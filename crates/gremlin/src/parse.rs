//! Recursive-descent parser for the Gremlin pipe dialect.

use crate::ast::*;
use crate::lex::{tokenize, GremlinError, Tok, Token};
use sqlgraph_json::{Json, Number};

/// Parse one Gremlin statement (query or CRUD operation).
pub fn parse(src: &str) -> Result<GremlinStatement, GremlinError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat(&Tok::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a query; errors if the statement is a CRUD operation.
pub fn parse_query(src: &str) -> Result<Pipeline, GremlinError> {
    match parse(src)? {
        GremlinStatement::Query(p) => Ok(p),
        other => Err(GremlinError {
            offset: 0,
            message: format!("expected a traversal query, found {other:?}"),
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn err(&self, message: impl Into<String>) -> GremlinError {
        GremlinError {
            offset: self.tokens[self.pos].offset,
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), GremlinError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<(), GremlinError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.err("unexpected trailing tokens"))
        }
    }

    fn ident(&mut self) -> Result<String, GremlinError> {
        match self.peek() {
            Tok::Ident(_) => match self.advance() {
                Tok::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.err("expected identifier")),
        }
    }

    fn string(&mut self) -> Result<String, GremlinError> {
        match self.peek() {
            Tok::Str(_) => match self.advance() {
                Tok::Str(s) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.err("expected string literal")),
        }
    }

    fn int(&mut self) -> Result<i64, GremlinError> {
        match self.peek() {
            Tok::Int(_) => match self.advance() {
                Tok::Int(v) => Ok(v),
                _ => unreachable!(),
            },
            _ => Err(self.err("expected integer literal")),
        }
    }

    fn literal(&mut self) -> Result<Json, GremlinError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.advance();
                Ok(Json::int(v))
            }
            Tok::Float(v) => {
                self.advance();
                Ok(Json::float(v))
            }
            Tok::Str(s) => {
                self.advance();
                Ok(Json::Str(s))
            }
            Tok::Ident(name) if name == "true" => {
                self.advance();
                Ok(Json::Bool(true))
            }
            Tok::Ident(name) if name == "false" => {
                self.advance();
                Ok(Json::Bool(false))
            }
            Tok::Ident(name) if name == "null" => {
                self.advance();
                Ok(Json::Null)
            }
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<GremlinStatement, GremlinError> {
        // Everything starts with `g.`.
        let g = self.ident()?;
        if g != "g" {
            return Err(self.err("Gremlin statements start with 'g.'"));
        }
        self.expect(&Tok::Dot)?;
        match self.peek().clone() {
            Tok::Ident(m) if m == "addVertex" => {
                self.advance();
                self.expect(&Tok::LParen)?;
                let props = if matches!(self.peek(), Tok::RParen) {
                    Vec::new()
                } else {
                    self.map_literal()?
                };
                self.expect(&Tok::RParen)?;
                Ok(GremlinStatement::AddVertex { props })
            }
            Tok::Ident(m) if m == "addEdge" => {
                self.advance();
                self.expect(&Tok::LParen)?;
                let src = self.vertex_ref()?;
                self.expect(&Tok::Comma)?;
                let dst = self.vertex_ref()?;
                self.expect(&Tok::Comma)?;
                let label = self.string()?;
                let props = if self.eat(&Tok::Comma) {
                    self.map_literal()?
                } else {
                    Vec::new()
                };
                self.expect(&Tok::RParen)?;
                Ok(GremlinStatement::AddEdge {
                    src,
                    dst,
                    label,
                    props,
                })
            }
            Tok::Ident(m) if m == "removeVertex" => {
                self.advance();
                self.expect(&Tok::LParen)?;
                let id = self.vertex_ref()?;
                self.expect(&Tok::RParen)?;
                Ok(GremlinStatement::RemoveVertex { id })
            }
            Tok::Ident(m) if m == "removeEdge" => {
                self.advance();
                self.expect(&Tok::LParen)?;
                let id = self.edge_ref()?;
                self.expect(&Tok::RParen)?;
                Ok(GremlinStatement::RemoveEdge { id })
            }
            _ => {
                let start = self.start_pipe()?;
                // `g.v(1).setProperty('k', v)` / `g.e(1).setProperty(...)`.
                if matches!(self.peek(), Tok::Dot)
                    && matches!(self.peek2(), Tok::Ident(n) if n == "setProperty")
                {
                    self.advance(); // .
                    self.advance(); // setProperty
                    self.expect(&Tok::LParen)?;
                    let key = self.string()?;
                    self.expect(&Tok::Comma)?;
                    let value = self.literal()?;
                    self.expect(&Tok::RParen)?;
                    return match start {
                        Pipe::VertexById(id) => {
                            Ok(GremlinStatement::SetVertexProperty { id, key, value })
                        }
                        Pipe::EdgeById(id) => {
                            Ok(GremlinStatement::SetEdgeProperty { id, key, value })
                        }
                        _ => Err(self.err("setProperty requires g.v(id) or g.e(id)")),
                    };
                }
                let mut pipes = vec![start];
                self.pipe_chain(&mut pipes)?;
                Ok(GremlinStatement::Query(Pipeline { pipes }))
            }
        }
    }

    fn vertex_ref(&mut self) -> Result<i64, GremlinError> {
        // `g.v(id)` or a bare integer id.
        if matches!(self.peek(), Tok::Int(_)) {
            return self.int();
        }
        let g = self.ident()?;
        if g != "g" {
            return Err(self.err("expected g.v(id)"));
        }
        self.expect(&Tok::Dot)?;
        let m = self.ident()?;
        if m != "v" {
            return Err(self.err("expected g.v(id)"));
        }
        self.expect(&Tok::LParen)?;
        let id = self.int()?;
        self.expect(&Tok::RParen)?;
        Ok(id)
    }

    fn edge_ref(&mut self) -> Result<i64, GremlinError> {
        if matches!(self.peek(), Tok::Int(_)) {
            return self.int();
        }
        let g = self.ident()?;
        if g != "g" {
            return Err(self.err("expected g.e(id)"));
        }
        self.expect(&Tok::Dot)?;
        let m = self.ident()?;
        if m != "e" {
            return Err(self.err("expected g.e(id)"));
        }
        self.expect(&Tok::LParen)?;
        let id = self.int()?;
        self.expect(&Tok::RParen)?;
        Ok(id)
    }

    /// `[k:'v', n:1]` — Groovy map literal; `[:]` is empty.
    fn map_literal(&mut self) -> Result<Vec<(String, Json)>, GremlinError> {
        self.expect(&Tok::LBracket)?;
        let mut props = Vec::new();
        if self.eat(&Tok::Colon) {
            self.expect(&Tok::RBracket)?;
            return Ok(props);
        }
        loop {
            let key = match self.peek().clone() {
                Tok::Ident(_) => self.ident()?,
                Tok::Str(_) => self.string()?,
                other => return Err(self.err(format!("expected map key, found {other:?}"))),
            };
            self.expect(&Tok::Colon)?;
            let value = self.literal()?;
            props.push((key, value));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RBracket)?;
        Ok(props)
    }

    // ---- pipes ----

    fn start_pipe(&mut self) -> Result<Pipe, GremlinError> {
        let name = self.ident()?;
        match name.as_str() {
            "V" => {
                let mut filter = None;
                if self.eat(&Tok::LParen) {
                    if !matches!(self.peek(), Tok::RParen) {
                        let key = self.string()?;
                        self.expect(&Tok::Comma)?;
                        let value = self.literal()?;
                        filter = Some((key, value));
                    }
                    self.expect(&Tok::RParen)?;
                }
                Ok(Pipe::Vertices { filter })
            }
            "E" => {
                if self.eat(&Tok::LParen) {
                    self.expect(&Tok::RParen)?;
                }
                Ok(Pipe::Edges)
            }
            "v" => {
                self.expect(&Tok::LParen)?;
                let id = self.int()?;
                self.expect(&Tok::RParen)?;
                Ok(Pipe::VertexById(id))
            }
            "e" => {
                self.expect(&Tok::LParen)?;
                let id = self.int()?;
                self.expect(&Tok::RParen)?;
                Ok(Pipe::EdgeById(id))
            }
            other => Err(self.err(format!("unknown start pipe '{other}'"))),
        }
    }

    fn pipe_chain(&mut self, pipes: &mut Vec<Pipe>) -> Result<(), GremlinError> {
        loop {
            if self.eat(&Tok::LBracket) {
                // Positional range `[lo..hi]`.
                let lo = self.int()?;
                self.expect(&Tok::DotDot)?;
                let hi = self.int()?;
                self.expect(&Tok::RBracket)?;
                pipes.push(Pipe::Range { lo, hi });
                continue;
            }
            if !self.eat(&Tok::Dot) {
                break;
            }
            let pipe = self.pipe()?;
            if let Some(p) = pipe {
                pipes.push(p);
            }
        }
        Ok(())
    }

    fn string_list(&mut self) -> Result<Vec<String>, GremlinError> {
        // Optional parenthesized list of string labels.
        let mut labels = Vec::new();
        if self.eat(&Tok::LParen) {
            if !matches!(self.peek(), Tok::RParen) {
                labels.push(self.string()?);
                while self.eat(&Tok::Comma) {
                    labels.push(self.string()?);
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(labels)
    }

    fn empty_parens(&mut self) -> Result<(), GremlinError> {
        if self.eat(&Tok::LParen) {
            self.expect(&Tok::RParen)?;
        }
        Ok(())
    }

    fn back_target(&mut self) -> Result<BackTarget, GremlinError> {
        match self.peek().clone() {
            Tok::Int(n) if n >= 0 => {
                self.advance();
                Ok(BackTarget::Steps(n as usize))
            }
            Tok::Str(_) => Ok(BackTarget::Named(self.string()?)),
            other => Err(self.err(format!("expected step count or name, found {other:?}"))),
        }
    }

    fn sub_pipelines(&mut self) -> Result<Vec<Pipeline>, GremlinError> {
        // `(_()..., _()..., ...)`
        self.expect(&Tok::LParen)?;
        let mut out = Vec::new();
        loop {
            self.expect(&Tok::Underscore)?;
            self.expect(&Tok::LParen)?;
            self.expect(&Tok::RParen)?;
            let mut pipes = Vec::new();
            self.pipe_chain(&mut pipes)?;
            out.push(Pipeline { pipes });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(out)
    }

    fn closure_block(&mut self) -> Result<Closure, GremlinError> {
        self.expect(&Tok::LBrace)?;
        let c = self.closure_or()?;
        self.expect(&Tok::RBrace)?;
        Ok(c)
    }

    /// Returns `None` for pure side-effect pipes with ignorable arguments.
    fn pipe(&mut self) -> Result<Option<Pipe>, GremlinError> {
        let name = self.ident()?;
        Ok(Some(match name.as_str() {
            "out" => Pipe::Out(self.string_list()?),
            "in" => Pipe::In(self.string_list()?),
            "both" => Pipe::Both(self.string_list()?),
            "outE" => Pipe::OutE(self.string_list()?),
            "inE" => Pipe::InE(self.string_list()?),
            "bothE" => Pipe::BothE(self.string_list()?),
            "outV" => {
                self.empty_parens()?;
                Pipe::OutV
            }
            "inV" => {
                self.empty_parens()?;
                Pipe::InV
            }
            "bothV" => {
                self.empty_parens()?;
                Pipe::BothV
            }
            "id" => {
                self.empty_parens()?;
                Pipe::Id
            }
            "label" => {
                self.empty_parens()?;
                Pipe::Label
            }
            "values" | "property" => {
                self.expect(&Tok::LParen)?;
                let key = self.string()?;
                self.expect(&Tok::RParen)?;
                Pipe::Values(key)
            }
            "path" => {
                self.empty_parens()?;
                Pipe::Path
            }
            "back" => {
                self.expect(&Tok::LParen)?;
                let target = self.back_target()?;
                self.expect(&Tok::RParen)?;
                Pipe::Back(target)
            }
            "has" => {
                self.expect(&Tok::LParen)?;
                let key = self.string()?;
                let (cmp, value) = if self.eat(&Tok::Comma) {
                    // `has('k', v)` or `has('k', T.op, v)`.
                    if matches!(self.peek(), Tok::Ident(t) if t == "T") {
                        self.advance();
                        self.expect(&Tok::Dot)?;
                        let op = self.ident()?;
                        let cmp = match op.as_str() {
                            "eq" => Cmp::Eq,
                            "neq" => Cmp::Neq,
                            "lt" => Cmp::Lt,
                            "lte" => Cmp::Lte,
                            "gt" => Cmp::Gt,
                            "gte" => Cmp::Gte,
                            other => return Err(self.err(format!("unknown T.{other}"))),
                        };
                        self.expect(&Tok::Comma)?;
                        (cmp, Some(self.literal()?))
                    } else {
                        (Cmp::Eq, Some(self.literal()?))
                    }
                } else {
                    (Cmp::Eq, None)
                };
                self.expect(&Tok::RParen)?;
                Pipe::Has { key, cmp, value }
            }
            "hasNot" => {
                self.expect(&Tok::LParen)?;
                let key = self.string()?;
                self.expect(&Tok::RParen)?;
                Pipe::HasNot { key }
            }
            "filter" => Pipe::Filter(self.closure_block()?),
            "interval" => {
                self.expect(&Tok::LParen)?;
                let key = self.string()?;
                self.expect(&Tok::Comma)?;
                let lo = self.literal()?;
                self.expect(&Tok::Comma)?;
                let hi = self.literal()?;
                self.expect(&Tok::RParen)?;
                Pipe::Interval { key, lo, hi }
            }
            "range" => {
                self.expect(&Tok::LParen)?;
                let lo = self.int()?;
                self.expect(&Tok::Comma)?;
                let hi = self.int()?;
                self.expect(&Tok::RParen)?;
                Pipe::Range { lo, hi }
            }
            "dedup" => {
                self.empty_parens()?;
                Pipe::Dedup
            }
            "except" => {
                self.expect(&Tok::LParen)?;
                let var = self.var_name()?;
                self.expect(&Tok::RParen)?;
                Pipe::Except(var)
            }
            "retain" => {
                self.expect(&Tok::LParen)?;
                let var = self.var_name()?;
                self.expect(&Tok::RParen)?;
                Pipe::Retain(var)
            }
            "simplePath" => {
                self.empty_parens()?;
                Pipe::SimplePath
            }
            "and" => Pipe::And(self.sub_pipelines()?),
            "or" => Pipe::Or(self.sub_pipelines()?),
            "as" => {
                self.expect(&Tok::LParen)?;
                let name = self.string()?;
                self.expect(&Tok::RParen)?;
                Pipe::As(name)
            }
            "aggregate" => {
                self.expect(&Tok::LParen)?;
                let var = self.var_name()?;
                self.expect(&Tok::RParen)?;
                Pipe::Aggregate(var)
            }
            "ifThenElse" => {
                let test = self.closure_block()?;
                let then = self.closure_block()?;
                let els = self.closure_block()?;
                Pipe::IfThenElse { test, then, els }
            }
            "copySplit" => Pipe::CopySplit(self.sub_pipelines()?),
            "fairMerge" | "exhaustMerge" => {
                self.empty_parens()?;
                return Ok(None); // merge is implicit in CopySplit's semantics
            }
            "loop" => {
                self.expect(&Tok::LParen)?;
                let back = self.back_target()?;
                self.expect(&Tok::RParen)?;
                let cond = self.closure_block()?;
                Pipe::Loop { back, cond }
            }
            "count" => {
                self.empty_parens()?;
                Pipe::Count
            }
            // Recognized side-effect pipes: identity semantics (§4.4).
            "groupBy" | "groupCount" | "table" | "cap" | "iterate" | "tree" | "store"
            | "sideEffect" | "optional" => {
                self.skip_args()?;
                Pipe::SideEffect(name)
            }
            other => return Err(self.err(format!("unknown pipe '{other}'"))),
        }))
    }

    fn var_name(&mut self) -> Result<String, GremlinError> {
        match self.peek().clone() {
            Tok::Ident(_) => self.ident(),
            Tok::Str(_) => self.string(),
            other => Err(self.err(format!("expected variable name, found {other:?}"))),
        }
    }

    /// Consume and discard a side-effect pipe's arguments: any balanced
    /// `(...)` and/or `{...}` blocks.
    fn skip_args(&mut self) -> Result<(), GremlinError> {
        loop {
            match self.peek() {
                Tok::LParen => self.skip_balanced(&Tok::LParen, &Tok::RParen)?,
                Tok::LBrace => self.skip_balanced(&Tok::LBrace, &Tok::RBrace)?,
                _ => break,
            }
        }
        Ok(())
    }

    fn skip_balanced(&mut self, open: &Tok, close: &Tok) -> Result<(), GremlinError> {
        self.expect(open)?;
        let mut depth = 1usize;
        loop {
            match self.peek() {
                Tok::Eof => return Err(self.err("unbalanced delimiters")),
                t if t == open => {
                    depth += 1;
                    self.advance();
                }
                t if t == close => {
                    depth -= 1;
                    self.advance();
                    if depth == 0 {
                        return Ok(());
                    }
                }
                _ => {
                    self.advance();
                }
            }
        }
    }

    // ---- closures ----

    fn closure_or(&mut self) -> Result<Closure, GremlinError> {
        let mut left = self.closure_and()?;
        while self.eat(&Tok::OrOr) {
            let right = self.closure_and()?;
            left = Closure::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn closure_and(&mut self) -> Result<Closure, GremlinError> {
        let mut left = self.closure_cmp()?;
        while self.eat(&Tok::AndAnd) {
            let right = self.closure_cmp()?;
            left = Closure::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn closure_cmp(&mut self) -> Result<Closure, GremlinError> {
        let left = self.closure_unary()?;
        let cmp = match self.peek() {
            Tok::EqEq => Cmp::Eq,
            Tok::Neq => Cmp::Neq,
            Tok::Lt => Cmp::Lt,
            Tok::Lte => Cmp::Lte,
            Tok::Gt => Cmp::Gt,
            Tok::Gte => Cmp::Gte,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.closure_unary()?;
        Ok(Closure::Compare(cmp, Box::new(left), Box::new(right)))
    }

    fn closure_unary(&mut self) -> Result<Closure, GremlinError> {
        if self.eat(&Tok::Bang) {
            return Ok(Closure::Not(Box::new(self.closure_unary()?)));
        }
        self.closure_primary()
    }

    fn closure_primary(&mut self) -> Result<Closure, GremlinError> {
        if self.eat(&Tok::LParen) {
            let inner = self.closure_or()?;
            self.expect(&Tok::RParen)?;
            return Ok(inner);
        }
        if let Tok::Ident(name) = self.peek().clone() {
            if name == "it" {
                self.advance();
                if self.eat(&Tok::Dot) {
                    let prop = self.ident()?;
                    if prop == "loops" {
                        return Ok(Closure::Loops);
                    }
                    // `it.key.contains('x')`
                    if matches!(self.peek(), Tok::Dot)
                        && matches!(self.peek2(), Tok::Ident(m) if m == "contains")
                    {
                        self.advance(); // .
                        self.advance(); // contains
                        self.expect(&Tok::LParen)?;
                        let needle = self.literal()?;
                        self.expect(&Tok::RParen)?;
                        return Ok(Closure::Contains(
                            Box::new(Closure::Prop(prop)),
                            Box::new(Closure::Literal(needle)),
                        ));
                    }
                    return Ok(Closure::Prop(prop));
                }
                return Ok(Closure::It);
            }
        }
        Ok(Closure::Literal(self.literal()?))
    }
}

/// Convenience: build an integer JSON literal (used by tests/translators).
pub fn json_int(v: i64) -> Json {
    Json::Num(Number::Int(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example_query() {
        // §4.1: g.V.filter{it.tag=='w'}.both.dedup().count()
        let q = parse_query("g.V.filter{it.tag=='w'}.both.dedup().count()").unwrap();
        assert_eq!(q.pipes.len(), 5);
        assert!(matches!(q.pipes[0], Pipe::Vertices { filter: None }));
        assert!(matches!(q.pipes[1], Pipe::Filter(_)));
        assert!(matches!(q.pipes[2], Pipe::Both(ref l) if l.is_empty()));
        assert!(matches!(q.pipes[3], Pipe::Dedup));
        assert!(matches!(q.pipes[4], Pipe::Count));
    }

    #[test]
    fn labeled_traversals_and_has() {
        let q = parse_query("g.V.has('name','marko').out('knows','created')[0..9]").unwrap();
        assert!(matches!(
            q.pipes[1],
            Pipe::Has { ref key, cmp: Cmp::Eq, value: Some(_) } if key == "name"
        ));
        assert!(matches!(q.pipes[2], Pipe::Out(ref l) if l.len() == 2));
        assert!(matches!(q.pipes[3], Pipe::Range { lo: 0, hi: 9 }));
    }

    #[test]
    fn has_with_comparator() {
        let q = parse_query("g.V.has('age', T.gt, 29)").unwrap();
        assert!(matches!(
            q.pipes[1],
            Pipe::Has {
                cmp: Cmp::Gt,
                value: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn graph_query_start_filter() {
        let q = parse_query("g.V('uri', 'http://dbpedia.org/ontology/Person').in('type')").unwrap();
        assert!(matches!(q.pipes[0], Pipe::Vertices { filter: Some(_) }));
    }

    #[test]
    fn loop_and_back() {
        let q = parse_query("g.v(1).as('x').out('isPartOf').loop('x'){it.loops < 4}.path").unwrap();
        assert!(matches!(q.pipes[1], Pipe::As(ref n) if n == "x"));
        assert!(matches!(
            q.pipes[3],
            Pipe::Loop { back: BackTarget::Named(ref n), .. } if n == "x"
        ));
        assert!(matches!(q.pipes[4], Pipe::Path));
        let q = parse_query("g.v(1).out.loop(1){it.loops < 3}").unwrap();
        assert!(matches!(
            q.pipes[2],
            Pipe::Loop {
                back: BackTarget::Steps(1),
                ..
            }
        ));
    }

    #[test]
    fn branch_pipes() {
        let q =
            parse_query("g.v(1).copySplit(_().out('a'), _().in('b')).fairMerge.dedup()").unwrap();
        assert!(matches!(q.pipes[1], Pipe::CopySplit(ref branches) if branches.len() == 2));
        // fairMerge is folded into CopySplit.
        assert!(matches!(q.pipes[2], Pipe::Dedup));

        let q = parse_query("g.V.and(_().out('a'), _().out('b'))").unwrap();
        assert!(matches!(q.pipes[1], Pipe::And(ref b) if b.len() == 2));
    }

    #[test]
    fn if_then_else() {
        let q = parse_query("g.V.ifThenElse{it.age > 30}{it.name}{it.age}").unwrap();
        assert!(matches!(q.pipes[1], Pipe::IfThenElse { .. }));
    }

    #[test]
    fn aggregate_except_retain() {
        let q = parse_query("g.v(1).aggregate(x).out.except(x)").unwrap();
        assert!(matches!(q.pipes[1], Pipe::Aggregate(ref v) if v == "x"));
        assert!(matches!(q.pipes[3], Pipe::Except(ref v) if v == "x"));
    }

    #[test]
    fn side_effect_pipes_are_identity() {
        let q = parse_query("g.V.groupBy{it.name}{it}.out.table(t1).iterate()").unwrap();
        assert!(matches!(q.pipes[1], Pipe::SideEffect(ref n) if n == "groupBy"));
        assert!(matches!(q.pipes[3], Pipe::SideEffect(ref n) if n == "table"));
    }

    #[test]
    fn crud_statements() {
        assert_eq!(
            parse("g.addVertex([name:'marko', age:29])").unwrap(),
            GremlinStatement::AddVertex {
                props: vec![
                    ("name".into(), Json::str("marko")),
                    ("age".into(), Json::int(29))
                ],
            }
        );
        assert_eq!(
            parse("g.addEdge(g.v(1), g.v(2), 'knows', [weight:0.5])").unwrap(),
            GremlinStatement::AddEdge {
                src: 1,
                dst: 2,
                label: "knows".into(),
                props: vec![("weight".into(), Json::float(0.5))],
            }
        );
        assert_eq!(
            parse("g.removeVertex(g.v(3))").unwrap(),
            GremlinStatement::RemoveVertex { id: 3 }
        );
        assert_eq!(
            parse("g.removeEdge(g.e(7))").unwrap(),
            GremlinStatement::RemoveEdge { id: 7 }
        );
        assert_eq!(
            parse("g.v(1).setProperty('age', 30)").unwrap(),
            GremlinStatement::SetVertexProperty {
                id: 1,
                key: "age".into(),
                value: Json::int(30)
            }
        );
    }

    #[test]
    fn empty_map_literal() {
        assert_eq!(
            parse("g.addVertex([:])").unwrap(),
            GremlinStatement::AddVertex { props: vec![] }
        );
        assert_eq!(
            parse("g.addVertex()").unwrap(),
            GremlinStatement::AddVertex { props: vec![] }
        );
    }

    #[test]
    fn closure_operators() {
        let q = parse_query("g.V.filter{it.age >= 18 && (it.name == 'x' || !(it.flag == true))}")
            .unwrap();
        let Pipe::Filter(c) = &q.pipes[1] else {
            panic!()
        };
        assert!(matches!(c, Closure::And(_, _)));
    }

    #[test]
    fn contains_closure() {
        let q = parse_query("g.V.filter{it.label.contains('en')}").unwrap();
        assert!(matches!(q.pipes[1], Pipe::Filter(Closure::Contains(_, _))));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "g",
            "g.",
            "g.W",
            "x.V",
            "g.V.unknownPipe",
            "g.V.has(",
            "g.v()",
            "g.V.loop(1)",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
