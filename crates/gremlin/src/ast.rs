//! Gremlin 1.x pipe-dialect abstract syntax.
//!
//! The dialect covered is the one the paper translates (§4, Table 5/8):
//! transform pipes, filter pipes, a few side-effect pipes (parsed, executed
//! as identity per §4.4), branch pipes, and the CRUD statements LinkBench
//! needs. Closures are restricted to simple comparisons/arithmetic over
//! `it` — exactly the paper's "no complex Groovy" limitation.

use sqlgraph_json::Json;

/// A complete Gremlin statement.
#[derive(Debug, Clone, PartialEq)]
pub enum GremlinStatement {
    /// A read-only traversal, e.g. `g.V.has('name','marko').out.count()`.
    Query(Pipeline),
    /// `g.addVertex([k:v, ...])`
    AddVertex {
        /// Initial properties.
        props: Vec<(String, Json)>,
    },
    /// `g.addEdge(g.v(a), g.v(b), 'label', [k:v, ...])`
    AddEdge {
        /// Source vertex id.
        src: i64,
        /// Target vertex id.
        dst: i64,
        /// Edge label.
        label: String,
        /// Initial properties.
        props: Vec<(String, Json)>,
    },
    /// `g.removeVertex(g.v(id))`
    RemoveVertex {
        /// Vertex id.
        id: i64,
    },
    /// `g.removeEdge(g.e(id))`
    RemoveEdge {
        /// Edge id.
        id: i64,
    },
    /// `g.v(id).setProperty('key', value)`
    SetVertexProperty {
        /// Vertex id.
        id: i64,
        /// Property key.
        key: String,
        /// New value.
        value: Json,
    },
    /// `g.e(id).setProperty('key', value)`
    SetEdgeProperty {
        /// Edge id.
        id: i64,
        /// Property key.
        key: String,
        /// New value.
        value: Json,
    },
}

/// An ordered chain of pipes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pipeline {
    /// The pipes, in evaluation order.
    pub pipes: Vec<Pipe>,
}

/// Comparison operators usable in `has` and closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Equality.
    Eq,
    /// Inequality.
    Neq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Lte,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Gte,
}

/// A restricted closure expression over the current element `it`.
#[derive(Debug, Clone, PartialEq)]
pub enum Closure {
    /// `it.<key>` — property access on the current element.
    Prop(String),
    /// `it` — the element itself (id comparison).
    It,
    /// `it.loops` — loop counter (only meaningful inside `loop`).
    Loops,
    /// Literal value.
    Literal(Json),
    /// Comparison.
    Compare(Cmp, Box<Closure>, Box<Closure>),
    /// Logical AND.
    And(Box<Closure>, Box<Closure>),
    /// Logical OR.
    Or(Box<Closure>, Box<Closure>),
    /// Logical NOT.
    Not(Box<Closure>),
    /// String `contains`/`startsWith`/`endsWith`-style matching via
    /// `it.key.matches('regex-free pattern with %')` is not supported;
    /// instead `contains` maps to substring search.
    Contains(Box<Closure>, Box<Closure>),
}

/// One Gremlin pipe.
#[derive(Debug, Clone, PartialEq)]
pub enum Pipe {
    // -- start pipes --
    /// `g.V` (optionally `g.V('key','value')` — a GraphQuery start).
    Vertices {
        /// Key/value filter applied at the start (GraphQuery merge).
        filter: Option<(String, Json)>,
    },
    /// `g.E`.
    Edges,
    /// `g.v(id)` — single-vertex start.
    VertexById(i64),
    /// `g.e(id)` — single-edge start.
    EdgeById(i64),

    // -- transform pipes --
    /// `out(labels...)`: adjacent vertices along outgoing edges.
    Out(Vec<String>),
    /// `in(labels...)`: adjacent vertices along incoming edges.
    In(Vec<String>),
    /// `both(labels...)`: adjacent vertices in both directions.
    Both(Vec<String>),
    /// `outE(labels...)`: outgoing edges.
    OutE(Vec<String>),
    /// `inE(labels...)`: incoming edges.
    InE(Vec<String>),
    /// `bothE(labels...)`: edges in both directions.
    BothE(Vec<String>),
    /// `outV`: an edge's source vertex.
    OutV,
    /// `inV`: an edge's target vertex.
    InV,
    /// `bothV`: both endpoints of an edge.
    BothV,
    /// `id`: element id.
    Id,
    /// `label`: edge label.
    Label,
    /// `values('key')` / property projection.
    Values(String),
    /// `path`: the traversal path of each object.
    Path,
    /// `back(n)` / `back('name')`: rewind the traverser.
    Back(BackTarget),

    // -- filter pipes --
    /// `has('key')` / `has('key', value)` / `has('key', T.gt, value)`.
    Has {
        /// Property key.
        key: String,
        /// Comparison (Eq for the two-argument form).
        cmp: Cmp,
        /// Value (None = existence check).
        value: Option<Json>,
    },
    /// `hasNot('key')`.
    HasNot {
        /// Property key.
        key: String,
    },
    /// `filter{closure}`.
    Filter(Closure),
    /// `interval('key', lo, hi)`: lo <= value < hi.
    Interval {
        /// Property key.
        key: String,
        /// Inclusive low bound.
        lo: Json,
        /// Exclusive high bound.
        hi: Json,
    },
    /// `[lo..hi]` or `range(lo, hi)`: inclusive positional slice.
    Range {
        /// First index kept (0-based).
        lo: i64,
        /// Last index kept (inclusive).
        hi: i64,
    },
    /// `dedup()`.
    Dedup,
    /// `except(x)`: drop elements present in the named bag.
    Except(String),
    /// `retain(x)`: keep only elements present in the named bag.
    Retain(String),
    /// `simplePath`: drop traversers whose path repeats an element.
    SimplePath,
    /// `and(_()..., _()...)`: keep elements for which every branch yields
    /// at least one result.
    And(Vec<Pipeline>),
    /// `or(_()..., _()...)`: keep elements for which some branch yields at
    /// least one result.
    Or(Vec<Pipeline>),

    // -- side-effect pipes (identity semantics per §4.4) --
    /// `as('name')`: mark the current step.
    As(String),
    /// `aggregate(x)`: greedily fill the named bag (barrier), pass through.
    Aggregate(String),
    /// Any other side-effect pipe (`groupBy`, `table`, `cap`, `iterate`,
    /// `sideEffect{...}`) — parsed, executed as identity.
    SideEffect(String),

    // -- branch pipes --
    /// `ifThenElse{test}{then}{else}` over closure expressions.
    IfThenElse {
        /// Test closure (boolean).
        test: Closure,
        /// Value produced when true.
        then: Closure,
        /// Value produced when false.
        els: Closure,
    },
    /// `copySplit(_()..., _()...)` followed by `fairMerge`/`exhaustMerge`.
    CopySplit(Vec<Pipeline>),
    /// `loop(n){cond}` / `loop('name'){cond}`: re-run the section since the
    /// numbered step / named mark while the closure holds.
    Loop {
        /// How far back the loop section starts.
        back: BackTarget,
        /// Continue-while condition (usually `it.loops < k`).
        cond: Closure,
    },

    // -- reduce --
    /// `count()`.
    Count,
}

/// Target of `back` / `loop`.
#[derive(Debug, Clone, PartialEq)]
pub enum BackTarget {
    /// Numeric: that many transform steps back.
    Steps(usize),
    /// Named: the position of `as('name')`.
    Named(String),
}
