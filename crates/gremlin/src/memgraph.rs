//! A minimal in-memory property graph: the simplest possible [`Blueprints`]
//! implementation. Used as the semantics oracle in differential tests and
//! as a scratch graph in examples. Not optimized — correctness reference
//! only.

use crate::blueprints::{Blueprints, Direction, GraphError, GraphResult};
use parking_lot_free_mutex::Mutex;
use sqlgraph_json::Json;
use std::collections::HashMap;

/// Tiny std-Mutex wrapper so this crate stays dependency-free.
mod parking_lot_free_mutex {
    /// `std::sync::Mutex` with poisoning folded away (lock poisoning on a
    /// panicking test thread should not cascade).
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Lock, ignoring poisoning.
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            match self.0.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    next_vid: i64,
    next_eid: i64,
    vertices: HashMap<i64, HashMap<String, Json>>,
    edges: HashMap<i64, EdgeRec>,
    out_edges: HashMap<i64, Vec<i64>>,
    in_edges: HashMap<i64, Vec<i64>>,
}

#[derive(Debug, Clone)]
struct EdgeRec {
    src: i64,
    dst: i64,
    label: String,
    props: HashMap<String, Json>,
}

/// The in-memory reference graph.
#[derive(Debug, Default)]
pub struct MemGraph {
    inner: Mutex<Inner>,
}

impl MemGraph {
    /// An empty graph.
    pub fn new() -> MemGraph {
        MemGraph::default()
    }

    /// Build the six-vertex sample graph of the paper's Figure 2a.
    pub fn sample() -> MemGraph {
        let g = MemGraph::new();
        let props = |pairs: &[(&str, Json)]| -> Vec<(String, Json)> {
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect()
        };
        let v1 = g
            .add_vertex(&props(&[
                ("name", Json::str("marko")),
                ("age", Json::int(29)),
            ]))
            .unwrap();
        let v2 = g
            .add_vertex(&props(&[
                ("name", Json::str("vadas")),
                ("age", Json::int(27)),
            ]))
            .unwrap();
        let v3 = g
            .add_vertex(&props(&[
                ("name", Json::str("lop")),
                ("lang", Json::str("java")),
            ]))
            .unwrap();
        let v4 = g
            .add_vertex(&props(&[
                ("name", Json::str("josh")),
                ("age", Json::int(32)),
            ]))
            .unwrap();
        g.add_edge(v1, v2, "knows", &props(&[("weight", Json::float(0.5))]))
            .unwrap();
        g.add_edge(v1, v4, "knows", &props(&[("weight", Json::float(1.0))]))
            .unwrap();
        g.add_edge(v1, v3, "created", &props(&[("weight", Json::float(0.4))]))
            .unwrap();
        g.add_edge(v4, v2, "likes", &props(&[("weight", Json::float(0.2))]))
            .unwrap();
        g.add_edge(v4, v3, "created", &props(&[("weight", Json::float(0.8))]))
            .unwrap();
        g
    }
}

impl Blueprints for MemGraph {
    fn vertex_ids(&self) -> Vec<i64> {
        let mut ids: Vec<i64> = self.inner.lock().vertices.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn edge_ids(&self) -> Vec<i64> {
        let mut ids: Vec<i64> = self.inner.lock().edges.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn vertex_exists(&self, v: i64) -> bool {
        self.inner.lock().vertices.contains_key(&v)
    }

    fn edge_exists(&self, e: i64) -> bool {
        self.inner.lock().edges.contains_key(&e)
    }

    fn edges_of(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        let matches = |e: &i64| -> bool {
            labels.is_empty()
                || inner
                    .edges
                    .get(e)
                    .is_some_and(|rec| labels.contains(&rec.label))
        };
        if matches!(dir, Direction::Out | Direction::Both) {
            if let Some(es) = inner.out_edges.get(&v) {
                out.extend(es.iter().filter(|e| matches(e)));
            }
        }
        if matches!(dir, Direction::In | Direction::Both) {
            if let Some(es) = inner.in_edges.get(&v) {
                out.extend(es.iter().filter(|e| matches(e)));
            }
        }
        out
    }

    fn edge_label(&self, e: i64) -> Option<String> {
        self.inner.lock().edges.get(&e).map(|r| r.label.clone())
    }

    fn edge_source(&self, e: i64) -> Option<i64> {
        self.inner.lock().edges.get(&e).map(|r| r.src)
    }

    fn edge_target(&self, e: i64) -> Option<i64> {
        self.inner.lock().edges.get(&e).map(|r| r.dst)
    }

    fn vertex_property(&self, v: i64, key: &str) -> Option<Json> {
        self.inner.lock().vertices.get(&v)?.get(key).cloned()
    }

    fn edge_property(&self, e: i64, key: &str) -> Option<Json> {
        self.inner.lock().edges.get(&e)?.props.get(key).cloned()
    }

    fn add_vertex(&self, props: &[(String, Json)]) -> GraphResult<i64> {
        let mut inner = self.inner.lock();
        inner.next_vid += 1;
        let id = inner.next_vid;
        inner.vertices.insert(id, props.iter().cloned().collect());
        Ok(id)
    }

    fn add_edge(
        &self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> GraphResult<i64> {
        let mut inner = self.inner.lock();
        if !inner.vertices.contains_key(&src) {
            return Err(GraphError::new(format!("no vertex {src}")));
        }
        if !inner.vertices.contains_key(&dst) {
            return Err(GraphError::new(format!("no vertex {dst}")));
        }
        inner.next_eid += 1;
        let id = inner.next_eid;
        inner.edges.insert(
            id,
            EdgeRec {
                src,
                dst,
                label: label.to_string(),
                props: props.iter().cloned().collect(),
            },
        );
        inner.out_edges.entry(src).or_default().push(id);
        inner.in_edges.entry(dst).or_default().push(id);
        Ok(id)
    }

    fn remove_vertex(&self, v: i64) -> GraphResult<()> {
        let mut inner = self.inner.lock();
        if inner.vertices.remove(&v).is_none() {
            return Err(GraphError::new(format!("no vertex {v}")));
        }
        let incident: Vec<i64> = inner
            .out_edges
            .remove(&v)
            .unwrap_or_default()
            .into_iter()
            .chain(inner.in_edges.remove(&v).unwrap_or_default())
            .collect();
        for e in incident {
            if let Some(rec) = inner.edges.remove(&e) {
                if let Some(es) = inner.out_edges.get_mut(&rec.src) {
                    es.retain(|x| *x != e);
                }
                if let Some(es) = inner.in_edges.get_mut(&rec.dst) {
                    es.retain(|x| *x != e);
                }
            }
        }
        Ok(())
    }

    fn remove_edge(&self, e: i64) -> GraphResult<()> {
        let mut inner = self.inner.lock();
        let rec = inner
            .edges
            .remove(&e)
            .ok_or_else(|| GraphError::new(format!("no edge {e}")))?;
        if let Some(es) = inner.out_edges.get_mut(&rec.src) {
            es.retain(|x| *x != e);
        }
        if let Some(es) = inner.in_edges.get_mut(&rec.dst) {
            es.retain(|x| *x != e);
        }
        Ok(())
    }

    fn set_vertex_property(&self, v: i64, key: &str, value: &Json) -> GraphResult<()> {
        let mut inner = self.inner.lock();
        let props = inner
            .vertices
            .get_mut(&v)
            .ok_or_else(|| GraphError::new(format!("no vertex {v}")))?;
        props.insert(key.to_string(), value.clone());
        Ok(())
    }

    fn set_edge_property(&self, e: i64, key: &str, value: &Json) -> GraphResult<()> {
        let mut inner = self.inner.lock();
        let rec = inner
            .edges
            .get_mut(&e)
            .ok_or_else(|| GraphError::new(format!("no edge {e}")))?;
        rec.props.insert(key.to_string(), value.clone());
        Ok(())
    }
}
