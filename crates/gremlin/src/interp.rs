//! The step-at-a-time reference interpreter.
//!
//! Evaluates a [`Pipeline`] over any [`Blueprints`] store the way the
//! TinkerPop stack does: each pipe pulls elements through, issuing one
//! Blueprints call per element per step. This is (a) the execution model of
//! the baseline stores the paper compares against, and (b) the semantics
//! oracle that the SQL translation is differential-tested against.

use crate::ast::{BackTarget, Closure, Cmp, GremlinStatement, Pipe, Pipeline};
use crate::blueprints::{Blueprints, Direction, GraphError, GraphResult};
use sqlgraph_json::Json;
use std::collections::{HashMap, HashSet};

/// A traversal result element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Elem {
    /// A vertex id.
    Vertex(i64),
    /// An edge id.
    Edge(i64),
    /// A computed value (count, property, id, path array...).
    Value(Json),
}

impl Elem {
    /// The element id, if a vertex or edge.
    pub fn id(&self) -> Option<i64> {
        match self {
            Elem::Vertex(v) | Elem::Edge(v) => Some(*v),
            Elem::Value(_) => None,
        }
    }

    /// The element as a JSON value (ids become integers).
    pub fn to_json(&self) -> Json {
        match self {
            Elem::Vertex(v) | Elem::Edge(v) => Json::int(*v),
            Elem::Value(j) => j.clone(),
        }
    }
}

#[derive(Debug, Clone)]
struct Traverser {
    elem: Elem,
    /// Elements visited at each transform step (for `path`, `back`,
    /// `simplePath`).
    trail: Vec<Elem>,
    /// `as('name')` marks.
    marks: HashMap<String, Elem>,
    /// Loop counter for the innermost `loop`.
    loops: u32,
}

impl Traverser {
    fn start(elem: Elem) -> Traverser {
        Traverser {
            elem,
            trail: Vec::new(),
            marks: HashMap::new(),
            loops: 1,
        }
    }

    /// Move to a new element, recording the old one on the trail.
    fn step_to(&self, elem: Elem) -> Traverser {
        let mut t = self.clone();
        t.trail.push(t.elem.clone());
        t.elem = elem;
        t
    }
}

/// Per-query mutable state: named aggregate bags.
#[derive(Default)]
struct QueryState {
    bags: HashMap<String, HashSet<Elem>>,
}

/// Evaluate a read-only pipeline over a Blueprints store.
pub fn eval<G: Blueprints + ?Sized>(graph: &G, pipeline: &Pipeline) -> GraphResult<Vec<Elem>> {
    let mut state = QueryState::default();
    let out = run_pipes(graph, &pipeline.pipes, Vec::new(), true, &mut state)?;
    Ok(out.into_iter().map(|t| t.elem).collect())
}

/// Execute any Gremlin statement (query or CRUD) over a Blueprints store.
pub fn execute<G: Blueprints + ?Sized>(
    graph: &G,
    stmt: &GremlinStatement,
) -> GraphResult<Vec<Elem>> {
    match stmt {
        GremlinStatement::Query(p) => eval(graph, p),
        GremlinStatement::AddVertex { props } => {
            let id = graph.add_vertex(props)?;
            Ok(vec![Elem::Vertex(id)])
        }
        GremlinStatement::AddEdge {
            src,
            dst,
            label,
            props,
        } => {
            let id = graph.add_edge(*src, *dst, label, props)?;
            Ok(vec![Elem::Edge(id)])
        }
        GremlinStatement::RemoveVertex { id } => {
            graph.remove_vertex(*id)?;
            Ok(vec![])
        }
        GremlinStatement::RemoveEdge { id } => {
            graph.remove_edge(*id)?;
            Ok(vec![])
        }
        GremlinStatement::SetVertexProperty { id, key, value } => {
            graph.set_vertex_property(*id, key, value)?;
            Ok(vec![])
        }
        GremlinStatement::SetEdgeProperty { id, key, value } => {
            graph.set_edge_property(*id, key, value)?;
            Ok(vec![])
        }
    }
}

fn run_pipes<G: Blueprints + ?Sized>(
    graph: &G,
    pipes: &[Pipe],
    mut current: Vec<Traverser>,
    is_root: bool,
    state: &mut QueryState,
) -> GraphResult<Vec<Traverser>> {
    let mut idx = 0;
    while idx < pipes.len() {
        let pipe = &pipes[idx];
        current = match pipe {
            Pipe::Loop { back, cond } => {
                let seg_start = loop_segment_start(pipes, idx, back)?;
                let segment = &pipes[seg_start..idx];
                let mut emitted = Vec::new();
                let mut looping = current;
                // Guard against non-terminating conditions.
                let mut rounds = 0u32;
                while !looping.is_empty() {
                    rounds += 1;
                    if rounds > 1_000 {
                        return Err(GraphError::new("loop exceeded 1000 iterations"));
                    }
                    if looping.len() + emitted.len() > 200_000 {
                        return Err(GraphError::new(
                            "loop produced more than 200k traversers; aborting",
                        ));
                    }
                    let mut continuing = Vec::new();
                    for t in looping {
                        if closure_truthy(graph, cond, &t)? {
                            continuing.push(t);
                        } else {
                            emitted.push(t);
                        }
                    }
                    looping = run_pipes(graph, segment, continuing, false, state)?
                        .into_iter()
                        .map(|mut t| {
                            t.loops += 1;
                            t
                        })
                        .collect();
                }
                emitted
            }
            other => run_one_pipe(graph, other, current, is_root && idx == 0, state)?,
        };
        idx += 1;
    }
    Ok(current)
}

fn loop_segment_start(pipes: &[Pipe], loop_idx: usize, back: &BackTarget) -> GraphResult<usize> {
    match back {
        BackTarget::Steps(n) => loop_idx
            .checked_sub(*n)
            .ok_or_else(|| GraphError::new("loop rewinds past the start of the pipeline")),
        BackTarget::Named(name) => {
            for (i, p) in pipes[..loop_idx].iter().enumerate() {
                if matches!(p, Pipe::As(n) if n == name) {
                    return Ok(i + 1);
                }
            }
            Err(GraphError::new(format!(
                "loop target as('{name}') not found"
            )))
        }
    }
}

fn run_one_pipe<G: Blueprints + ?Sized>(
    graph: &G,
    pipe: &Pipe,
    input: Vec<Traverser>,
    is_start: bool,
    state: &mut QueryState,
) -> GraphResult<Vec<Traverser>> {
    let mut out = Vec::new();
    match pipe {
        // ---- start pipes ----
        Pipe::Vertices { filter } => {
            let _ = is_start; // start pipes ignore any (empty) input
            match filter {
                None => {
                    for v in graph.vertex_ids() {
                        out.push(Traverser::start(Elem::Vertex(v)));
                    }
                }
                Some((key, value)) => {
                    for v in graph.vertices_by_property(key, value) {
                        out.push(Traverser::start(Elem::Vertex(v)));
                    }
                }
            }
        }
        Pipe::Edges => {
            for e in graph.edge_ids() {
                out.push(Traverser::start(Elem::Edge(e)));
            }
        }
        Pipe::VertexById(id) => {
            if graph.vertex_exists(*id) {
                out.push(Traverser::start(Elem::Vertex(*id)));
            }
        }
        Pipe::EdgeById(id) => {
            if graph.edge_exists(*id) {
                out.push(Traverser::start(Elem::Edge(*id)));
            }
        }

        // ---- vertex-to-vertex transforms ----
        Pipe::Out(labels) | Pipe::In(labels) | Pipe::Both(labels) => {
            let dir = match pipe {
                Pipe::Out(_) => Direction::Out,
                Pipe::In(_) => Direction::In,
                _ => Direction::Both,
            };
            for t in &input {
                let Elem::Vertex(v) = t.elem else {
                    return Err(GraphError::new("out/in/both requires vertices"));
                };
                for u in graph.adjacent(v, dir, labels) {
                    out.push(t.step_to(Elem::Vertex(u)));
                }
            }
        }
        Pipe::OutE(labels) | Pipe::InE(labels) | Pipe::BothE(labels) => {
            let dir = match pipe {
                Pipe::OutE(_) => Direction::Out,
                Pipe::InE(_) => Direction::In,
                _ => Direction::Both,
            };
            for t in &input {
                let Elem::Vertex(v) = t.elem else {
                    return Err(GraphError::new("outE/inE/bothE requires vertices"));
                };
                for e in graph.edges_of(v, dir, labels) {
                    out.push(t.step_to(Elem::Edge(e)));
                }
            }
        }
        Pipe::OutV | Pipe::InV | Pipe::BothV => {
            for t in &input {
                let Elem::Edge(e) = t.elem else {
                    return Err(GraphError::new("outV/inV/bothV requires edges"));
                };
                match pipe {
                    Pipe::OutV => {
                        if let Some(v) = graph.edge_source(e) {
                            out.push(t.step_to(Elem::Vertex(v)));
                        }
                    }
                    Pipe::InV => {
                        if let Some(v) = graph.edge_target(e) {
                            out.push(t.step_to(Elem::Vertex(v)));
                        }
                    }
                    _ => {
                        if let Some(v) = graph.edge_source(e) {
                            out.push(t.step_to(Elem::Vertex(v)));
                        }
                        if let Some(v) = graph.edge_target(e) {
                            out.push(t.step_to(Elem::Vertex(v)));
                        }
                    }
                }
            }
        }
        Pipe::Id => {
            for t in &input {
                let id = t
                    .elem
                    .id()
                    .ok_or_else(|| GraphError::new("id() requires a graph element"))?;
                out.push(t.step_to(Elem::Value(Json::int(id))));
            }
        }
        Pipe::Label => {
            for t in &input {
                let Elem::Edge(e) = t.elem else {
                    return Err(GraphError::new("label requires edges"));
                };
                let label = graph
                    .edge_label(e)
                    .ok_or_else(|| GraphError::new(format!("edge {e} has no label")))?;
                out.push(t.step_to(Elem::Value(Json::Str(label))));
            }
        }
        Pipe::Values(key) => {
            for t in &input {
                let value = element_property(graph, &t.elem, key)?;
                if let Some(v) = value {
                    out.push(t.step_to(Elem::Value(v)));
                }
            }
        }
        Pipe::Path => {
            for t in &input {
                let mut items: Vec<Json> = t.trail.iter().map(Elem::to_json).collect();
                items.push(t.elem.to_json());
                out.push(t.step_to(Elem::Value(Json::Array(items))));
            }
        }
        Pipe::Back(target) => {
            for t in &input {
                let elem = match target {
                    BackTarget::Named(name) => t
                        .marks
                        .get(name)
                        .cloned()
                        .ok_or_else(|| GraphError::new(format!("no mark as('{name}')")))?,
                    BackTarget::Steps(n) => {
                        if *n == 0 || t.trail.len() < *n {
                            return Err(GraphError::new("back(n) rewinds past the start"));
                        }
                        t.trail[t.trail.len() - n].clone()
                    }
                };
                out.push(t.step_to(elem));
            }
        }

        // ---- filters ----
        Pipe::Has { key, cmp, value } => {
            for t in input {
                let prop = element_property(graph, &t.elem, key)?;
                let keep = match (value, prop) {
                    (None, p) => p.is_some(),
                    (Some(_), None) => false,
                    (Some(want), Some(got)) => json_compare(&got, want)
                        .map(|o| cmp_matches(*cmp, o))
                        .unwrap_or(false),
                };
                if keep {
                    out.push(t);
                }
            }
        }
        Pipe::HasNot { key } => {
            for t in input {
                if element_property(graph, &t.elem, key)?.is_none() {
                    out.push(t);
                }
            }
        }
        Pipe::Filter(closure) => {
            for t in input {
                if closure_truthy(graph, closure, &t)? {
                    out.push(t);
                }
            }
        }
        Pipe::Interval { key, lo, hi } => {
            for t in input {
                let Some(got) = element_property(graph, &t.elem, key)? else {
                    continue;
                };
                let ge_lo = json_compare(&got, lo).is_some_and(|o| o != std::cmp::Ordering::Less);
                let lt_hi = json_compare(&got, hi).is_some_and(|o| o == std::cmp::Ordering::Less);
                if ge_lo && lt_hi {
                    out.push(t);
                }
            }
        }
        Pipe::Range { lo, hi } => {
            for (i, t) in input.into_iter().enumerate() {
                let i = i as i64;
                if i >= *lo && i <= *hi {
                    out.push(t);
                }
            }
        }
        Pipe::Dedup => {
            let mut seen = HashSet::new();
            for t in input {
                if seen.insert(t.elem.clone()) {
                    out.push(t);
                }
            }
        }
        Pipe::Except(var) => {
            let bag = state.bags.entry(var.clone()).or_default().clone();
            for t in input {
                if !bag.contains(&t.elem) {
                    out.push(t);
                }
            }
        }
        Pipe::Retain(var) => {
            let bag = state.bags.entry(var.clone()).or_default().clone();
            for t in input {
                if bag.contains(&t.elem) {
                    out.push(t);
                }
            }
        }
        Pipe::SimplePath => {
            for t in input {
                let mut seen = HashSet::new();
                let simple = t
                    .trail
                    .iter()
                    .chain(std::iter::once(&t.elem))
                    .all(|e| seen.insert(e.clone()));
                if simple {
                    out.push(t);
                }
            }
        }
        Pipe::And(branches) | Pipe::Or(branches) => {
            let want_all = matches!(pipe, Pipe::And(_));
            for t in input {
                let mut hits = 0usize;
                for b in branches {
                    let res = run_pipes(graph, &b.pipes, vec![t.clone()], false, state)?;
                    if !res.is_empty() {
                        hits += 1;
                    }
                }
                let keep = if want_all {
                    hits == branches.len()
                } else {
                    hits > 0
                };
                if keep {
                    out.push(t);
                }
            }
        }

        // ---- side effects ----
        Pipe::As(name) => {
            for mut t in input {
                t.marks.insert(name.clone(), t.elem.clone());
                out.push(t);
            }
        }
        Pipe::Aggregate(var) => {
            // Barrier: fill the bag greedily, pass everything through.
            let bag = state.bags.entry(var.clone()).or_default();
            for t in &input {
                bag.insert(t.elem.clone());
            }
            out = input;
        }
        Pipe::SideEffect(_) => {
            out = input;
        }

        // ---- branches ----
        Pipe::IfThenElse { test, then, els } => {
            for t in &input {
                let branch = if closure_truthy(graph, test, t)? {
                    then
                } else {
                    els
                };
                let value = closure_value(graph, branch, t)?;
                out.push(t.step_to(Elem::Value(value)));
            }
        }
        Pipe::CopySplit(branches) => {
            for t in &input {
                for b in branches {
                    let res = run_pipes(graph, &b.pipes, vec![t.clone()], false, state)?;
                    out.extend(res);
                }
            }
        }
        Pipe::Loop { .. } => {
            unreachable!("Loop handled by run_pipes")
        }

        // ---- reduce ----
        Pipe::Count => {
            let n = input.len() as i64;
            out.push(Traverser::start(Elem::Value(Json::int(n))));
        }
    }
    Ok(out)
}

fn element_property<G: Blueprints + ?Sized>(
    graph: &G,
    elem: &Elem,
    key: &str,
) -> GraphResult<Option<Json>> {
    match elem {
        Elem::Vertex(v) => Ok(graph.vertex_property(*v, key)),
        Elem::Edge(e) => Ok(graph.edge_property(*e, key)),
        Elem::Value(_) => Err(GraphError::new("property access requires a graph element")),
    }
}

/// Compare two JSON scalars with numeric coercion; `None` when the types
/// are incomparable (mirrors the SQL engine's unknown semantics).
pub fn json_compare(a: &Json, b: &Json) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Json::Num(x), Json::Num(y)) => Some(x.cmp_num(y)),
        (Json::Str(x), Json::Str(y)) => Some(x.cmp(y)),
        (Json::Bool(x), Json::Bool(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

fn cmp_matches(cmp: Cmp, o: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match cmp {
        Cmp::Eq => o == Equal,
        Cmp::Neq => o != Equal,
        Cmp::Lt => o == Less,
        Cmp::Lte => o != Greater,
        Cmp::Gt => o == Greater,
        Cmp::Gte => o != Less,
    }
}

fn closure_truthy<G: Blueprints + ?Sized>(
    graph: &G,
    c: &Closure,
    t: &Traverser,
) -> GraphResult<bool> {
    Ok(matches!(closure_value(graph, c, t)?, Json::Bool(true)))
}

fn closure_value<G: Blueprints + ?Sized>(
    graph: &G,
    c: &Closure,
    t: &Traverser,
) -> GraphResult<Json> {
    Ok(match c {
        Closure::Literal(v) => v.clone(),
        Closure::It => t.elem.to_json(),
        Closure::Loops => Json::int(t.loops as i64),
        Closure::Prop(key) => element_property(graph, &t.elem, key)?.unwrap_or(Json::Null),
        Closure::Compare(cmp, l, r) => {
            let lv = closure_value(graph, l, t)?;
            let rv = closure_value(graph, r, t)?;
            match json_compare(&lv, &rv) {
                Some(o) => Json::Bool(cmp_matches(*cmp, o)),
                // Equality on incomparable/missing values is decidable.
                None => match cmp {
                    Cmp::Eq => Json::Bool(lv == rv),
                    Cmp::Neq => Json::Bool(lv != rv),
                    _ => Json::Bool(false),
                },
            }
        }
        Closure::And(l, r) => {
            Json::Bool(closure_truthy(graph, l, t)? && closure_truthy(graph, r, t)?)
        }
        Closure::Or(l, r) => {
            Json::Bool(closure_truthy(graph, l, t)? || closure_truthy(graph, r, t)?)
        }
        Closure::Not(x) => Json::Bool(!closure_truthy(graph, x, t)?),
        Closure::Contains(hay, needle) => {
            let h = closure_value(graph, hay, t)?;
            let n = closure_value(graph, needle, t)?;
            match (h, n) {
                (Json::Str(h), Json::Str(n)) => Json::Bool(h.contains(&n)),
                _ => Json::Bool(false),
            }
        }
    })
}
