//! Tokenizer for the Gremlin pipe dialect.

use std::fmt;

/// Lex/parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GremlinError {
    /// Byte offset in the query text.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for GremlinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gremlin error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for GremlinError {}

/// A token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset.
    pub offset: usize,
    /// Kind/payload.
    pub kind: Tok,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (`g`, `V`, `out`, `it`, `T`, property names...).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single- or double-quoted string.
    Str(String),
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `..`
    DotDot,
    /// `==`
    EqEq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Lte,
    /// `>`
    Gt,
    /// `>=`
    Gte,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `_` (anonymous pipeline starter `_()`)
    Underscore,
    /// `;` statement separator (accepted, ignored at end)
    Semicolon,
    /// End of input.
    Eof,
}

/// Tokenize a Gremlin query.
pub fn tokenize(src: &str) -> Result<Vec<Token>, GremlinError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = b;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(&c) if c == quote => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            // `i` points at ASCII '\', so `i + 1` is a char
                            // boundary; consume one full character after it.
                            let esc = src[i + 1..].chars().next().ok_or(GremlinError {
                                offset: i,
                                message: "truncated escape".into(),
                            })?;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            });
                            i += 1 + esc.len_utf8();
                        }
                        Some(_) => {
                            let c = src[i..].chars().next().expect("non-empty");
                            s.push(c);
                            i += c.len_utf8();
                        }
                        None => {
                            return Err(GremlinError {
                                offset: start,
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                out.push(Token {
                    offset: start,
                    kind: Tok::Str(s),
                });
            }
            b'0'..=b'9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // Take care not to eat the `..` of a range literal.
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit);
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    out.push(Token {
                        offset: start,
                        kind: Tok::Float(text.parse().map_err(|_| GremlinError {
                            offset: start,
                            message: format!("bad float '{text}'"),
                        })?),
                    });
                } else {
                    let text = &src[start..i];
                    out.push(Token {
                        offset: start,
                        kind: Tok::Int(text.parse().map_err(|_| GremlinError {
                            offset: start,
                            message: format!("bad integer '{text}'"),
                        })?),
                    });
                }
            }
            b'_' if !bytes
                .get(i + 1)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') =>
            {
                out.push(Token {
                    offset: start,
                    kind: Tok::Underscore,
                });
                i += 1;
            }
            _ if b == b'_' || b.is_ascii_alphabetic() => {
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.push(Token {
                    offset: start,
                    kind: Tok::Ident(src[start..i].to_string()),
                });
            }
            _ => {
                let two = bytes.get(i + 1).copied();
                let (kind, len) = match (b, two) {
                    (b'.', Some(b'.')) => (Tok::DotDot, 2),
                    (b'=', Some(b'=')) => (Tok::EqEq, 2),
                    (b'!', Some(b'=')) => (Tok::Neq, 2),
                    (b'<', Some(b'=')) => (Tok::Lte, 2),
                    (b'>', Some(b'=')) => (Tok::Gte, 2),
                    (b'&', Some(b'&')) => (Tok::AndAnd, 2),
                    (b'|', Some(b'|')) => (Tok::OrOr, 2),
                    (b'.', _) => (Tok::Dot, 1),
                    (b'(', _) => (Tok::LParen, 1),
                    (b')', _) => (Tok::RParen, 1),
                    (b'{', _) => (Tok::LBrace, 1),
                    (b'}', _) => (Tok::RBrace, 1),
                    (b'[', _) => (Tok::LBracket, 1),
                    (b']', _) => (Tok::RBracket, 1),
                    (b',', _) => (Tok::Comma, 1),
                    (b':', _) => (Tok::Colon, 1),
                    (b'<', _) => (Tok::Lt, 1),
                    (b'>', _) => (Tok::Gt, 1),
                    (b'!', _) => (Tok::Bang, 1),
                    (b';', _) => (Tok::Semicolon, 1),
                    (b'-', Some(c)) if c.is_ascii_digit() => {
                        // Negative number literal.
                        let mut j = i + 1;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                        let is_float = j < bytes.len()
                            && bytes[j] == b'.'
                            && bytes.get(j + 1).is_some_and(u8::is_ascii_digit);
                        if is_float {
                            j += 1;
                            while j < bytes.len() && bytes[j].is_ascii_digit() {
                                j += 1;
                            }
                            let text = &src[i..j];
                            out.push(Token {
                                offset: start,
                                kind: Tok::Float(text.parse().map_err(|_| GremlinError {
                                    offset: start,
                                    message: format!("bad float '{text}'"),
                                })?),
                            });
                        } else {
                            let text = &src[i..j];
                            out.push(Token {
                                offset: start,
                                kind: Tok::Int(text.parse().map_err(|_| GremlinError {
                                    offset: start,
                                    message: format!("bad integer '{text}'"),
                                })?),
                            });
                        }
                        i = j;
                        continue;
                    }
                    _ => {
                        return Err(GremlinError {
                            offset: i,
                            message: format!("unexpected character '{}'", b as char),
                        })
                    }
                };
                out.push(Token {
                    offset: start,
                    kind,
                });
                i += len;
            }
        }
    }
    out.push(Token {
        offset: src.len(),
        kind: Tok::Eof,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_typical_query() {
        let ks = kinds("g.V.filter{it.tag=='w'}.both.dedup().count()");
        assert!(ks.contains(&Tok::Ident("filter".into())));
        assert!(ks.contains(&Tok::LBrace));
        assert!(ks.contains(&Tok::EqEq));
        assert!(ks.contains(&Tok::Str("w".into())));
    }

    #[test]
    fn range_literal_does_not_eat_dots() {
        let ks = kinds("[0..10]");
        assert_eq!(
            ks,
            vec![
                Tok::LBracket,
                Tok::Int(0),
                Tok::DotDot,
                Tok::Int(10),
                Tok::RBracket,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn floats_and_negatives() {
        assert_eq!(kinds("0.5")[0], Tok::Float(0.5));
        assert_eq!(kinds("-3")[0], Tok::Int(-3));
        assert_eq!(kinds("-2.5")[0], Tok::Float(-2.5));
    }

    #[test]
    fn underscore_pipeline_marker() {
        let ks = kinds("_().out('a')");
        assert_eq!(ks[0], Tok::Underscore);
        // but identifiers with underscores stay identifiers
        assert_eq!(kinds("my_var")[0], Tok::Ident("my_var".into()));
    }

    #[test]
    fn strings_with_escapes_and_quotes() {
        assert_eq!(kinds(r#"'it\'s'"#)[0], Tok::Str("it's".into()));
        assert_eq!(kinds(r#""double""#)[0], Tok::Str("double".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("'open").is_err());
        assert!(tokenize("#").is_err());
    }
}
