//! Server lifecycle: graceful shutdown drains in-flight queries and rolls
//! back open transactions; killing the store mid-commit over the simulated
//! file system and reopening recovers commit-prefix-consistent state.

use sqlgraph_core::{SchemaConfig, SqlGraph};
use sqlgraph_json::Json;
use sqlgraph_rel::{Fault, FaultKind, SimFs, Value};
use sqlgraph_server::{Client, ClientError, ErrorCode, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn small_graph() -> Arc<SqlGraph> {
    let graph = Arc::new(SqlGraph::new_in_memory());
    for i in 0..50 {
        graph
            .add_vertex([("name", Json::str(format!("v{i}")))])
            .unwrap();
    }
    for i in 1..50 {
        graph
            .add_edge(i, (i % 50) + 1, "next", [("weight", Json::float(1.0))])
            .unwrap();
    }
    graph
}

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let graph = small_graph();
    let server = Server::start_local(Arc::clone(&graph)).unwrap();
    let addr = server.local_addr();
    let expected = graph.query("g.V.out.out.count()").unwrap().rows.clone();

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let stop = Arc::clone(&stop);
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut completed = 0u64;
            loop {
                match client.query_gremlin("g.V.out.out.count()") {
                    // A response that arrives must be complete and correct —
                    // a drain may refuse work but never truncate results.
                    Ok(rel) => {
                        assert_eq!(rel.rows, expected);
                        completed += 1;
                    }
                    Err(ClientError::Server { code, .. }) => {
                        assert_eq!(code, ErrorCode::ShuttingDown);
                        break;
                    }
                    Err(ClientError::Io(_)) => break, // socket closed post-drain
                    Err(other) => panic!("unexpected failure: {other}"),
                }
                if stop.load(Ordering::Relaxed) {
                    // Keep issuing a few more to race the drain itself.
                    if completed > 0 {
                        break;
                    }
                }
            }
            completed
        }));
    }
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    server.shutdown();
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "no query completed before the drain");
}

#[test]
fn shutdown_rolls_back_open_transactions() {
    let graph = small_graph();
    let server = Server::start_local(Arc::clone(&graph)).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    client.begin().unwrap();
    client
        .query_gremlin("g.addVertex(['name':'provisional'])")
        .unwrap();
    assert_eq!(server.open_transactions(), 1);

    server.shutdown();

    // The transaction rolled back during the drain: no snapshot leaked,
    // no provisional row survived.
    assert_eq!(graph.database().txns().active_snapshots(), 0);
    assert_eq!(
        graph.query("g.V.count()").unwrap().rows,
        vec![vec![Value::Int(50)]]
    );
}

#[test]
fn shutdown_refuses_new_begins_but_finishes_the_drain() {
    let graph = small_graph();
    let cfg = ServerConfig {
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&graph), cfg).unwrap();
    let addr = server.local_addr();

    // A committed transaction before shutdown sticks.
    let mut client = Client::connect(addr).unwrap();
    client.begin().unwrap();
    client
        .query_gremlin("g.addVertex(['name':'durable'])")
        .unwrap();
    client.commit().unwrap();
    server.shutdown();
    assert_eq!(
        graph.query("g.V.count()").unwrap().rows,
        vec![vec![Value::Int(51)]]
    );
}

#[test]
fn kill_mid_commit_then_reopen_recovers_commit_prefix() {
    let fs = SimFs::new();
    let base = std::path::PathBuf::from("server.wal");
    let config = SchemaConfig {
        out_buckets: 3,
        in_buckets: 3,
    };

    let committed: Vec<String> = {
        let graph = Arc::new(SqlGraph::open_with_vfs(&base, config, Arc::new(fs.clone())).unwrap());
        graph.set_sync_on_commit(true);
        let server = Server::start_local(Arc::clone(&graph)).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        // A prefix of committed remote transactions.
        let mut names = Vec::new();
        for i in 0..5 {
            client.begin().unwrap();
            let name = format!("committed{i}");
            client
                .query_gremlin(&format!("g.addVertex(['name':'{name}'])"))
                .unwrap();
            client.commit().unwrap();
            names.push(format!("s:{name}"));
        }

        // Crash the file system at the next operation: the in-flight
        // commit must fail with a typed WAL error frame, not a hang or a
        // torn acknowledgement.
        client.begin().unwrap();
        client
            .query_gremlin("g.addVertex(['name':'lost'])")
            .unwrap();
        fs.schedule_fault(Fault {
            at_op: fs.op_count(),
            kind: FaultKind::Crash { keep_tail: 0 },
        });
        let err = client.commit().unwrap_err();
        match &err {
            ClientError::Server { code, .. } => assert_eq!(*code, ErrorCode::Wal, "got {err}"),
            other => panic!("expected WAL error frame, got {other}"),
        }
        server.shutdown();
        names
    };

    // Reopen from the surviving bytes: every acknowledged commit is
    // there, the failed one is not.
    fs.recover();
    let graph = SqlGraph::open_with_vfs(&base, config, Arc::new(fs.clone())).unwrap();
    let rel = graph.query("g.V.values('name')").unwrap();
    let mut names: Vec<String> = rel
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => format!("s:{s}"),
            other => panic!("unexpected value {other:?}"),
        })
        .collect();
    names.sort();
    assert_eq!(names, committed);
}

#[test]
fn connection_cap_refuses_excess_sockets_without_harming_existing_ones() {
    let graph = small_graph();
    let cfg = ServerConfig {
        max_connections: 4,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&graph), cfg).unwrap();
    let addr = server.local_addr();

    let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(addr).unwrap()).collect();
    for c in &mut clients {
        c.ping().unwrap();
    }
    // The fifth connection is refused (connect may succeed at the TCP
    // level before the server closes it; the handshake must fail).
    let refused = Client::connect(addr);
    assert!(refused.is_err(), "connection over the cap must be refused");
    // Existing sessions keep working.
    for c in &mut clients {
        c.ping().unwrap();
    }
    server.shutdown();
}
