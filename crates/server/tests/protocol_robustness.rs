//! Protocol-robustness suite: feed a live server truncated, oversized,
//! and bit-flipped frames plus mid-frame disconnects. The server must
//! never panic, never leak sessions or snapshots, and never corrupt
//! another connection's results. Mirrors the byte-by-byte corruption
//! sweep style of the WAL crash matrix.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlgraph_core::SqlGraph;
use sqlgraph_json::Json;
use sqlgraph_rel::Value;
use sqlgraph_server::{protocol, Client, ErrorCode, Request, Server, ServerConfig, PROTO_VERSION};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_graph() -> Arc<SqlGraph> {
    let graph = Arc::new(SqlGraph::new_in_memory());
    for i in 0..4 {
        graph
            .add_vertex([("name", Json::str(format!("v{i}")))])
            .unwrap();
    }
    graph.add_edge(1, 2, "knows", []).unwrap();
    graph
}

fn start_server() -> (Arc<SqlGraph>, Server) {
    let graph = small_graph();
    let cfg = ServerConfig {
        max_frame: 64 * 1024,
        txn_idle_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&graph), cfg).unwrap();
    (graph, server)
}

/// Raw frame write: length prefix + body.
fn send_raw(sock: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    sock.write_all(&(body.len() as u32).to_le_bytes())?;
    sock.write_all(body)
}

fn read_response(sock: &mut TcpStream) -> Option<Vec<u8>> {
    let mut len = [0u8; 4];
    sock.read_exact(&mut len).ok()?;
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    sock.read_exact(&mut body).ok()?;
    Some(body)
}

fn hello_body() -> Vec<u8> {
    Request::Hello {
        proto: PROTO_VERSION,
        token: String::new(),
    }
    .encode()
}

/// The control connection proves the server still works and nothing
/// cross-contaminated: a known query must keep returning the same rows.
fn assert_healthy(client: &mut Client) {
    let rel = client.query_sql("SELECT COUNT(*) FROM va").unwrap();
    assert_eq!(rel.rows, vec![vec![Value::Int(4)]]);
}

/// Wait for the server's connection gauge to drain back to `n`.
fn wait_active(server: &Server, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.active_connections() > n {
        assert!(
            Instant::now() < deadline,
            "connections leaked: {} > {n}",
            server.active_connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn truncated_frames_never_kill_the_server() {
    let (_graph, server) = start_server();
    let addr = server.local_addr();
    let mut control = Client::connect(addr).unwrap();

    let valid = Request::QuerySql {
        sql: "SELECT vid FROM va WHERE vid = ?".into(),
        params: vec![Value::Int(1)],
    }
    .encode();

    // Every truncation point of a handshake-plus-query exchange.
    for cut in 0..valid.len() {
        let mut sock = TcpStream::connect(addr).unwrap();
        send_raw(&mut sock, &hello_body()).unwrap();
        assert!(read_response(&mut sock).is_some(), "handshake failed");
        // Announce the full length but send only a prefix, then slam the
        // connection shut mid-frame.
        sock.write_all(&(valid.len() as u32).to_le_bytes()).unwrap();
        sock.write_all(&valid[..cut]).unwrap();
        drop(sock);
    }
    assert_healthy(&mut control);
    wait_active(&server, 1); // only the control connection remains
    assert_eq!(server.worker_panics(), 0);
    server.shutdown();
}

#[test]
fn bitflipped_frames_get_typed_errors_not_panics() {
    let (graph, server) = start_server();
    let addr = server.local_addr();
    let mut control = Client::connect(addr).unwrap();

    let valid = Request::QueryGremlin {
        gremlin: "g.v(1).out('knows')".into(),
    }
    .encode();

    // Flip every bit of the body; the server must answer every frame
    // (typed error or a successful result for still-valid mutations) and
    // survive. Reconnect only when the server closes the connection.
    let mut sock = TcpStream::connect(addr).unwrap();
    send_raw(&mut sock, &hello_body()).unwrap();
    read_response(&mut sock).unwrap();
    for bit in 0..valid.len() * 8 {
        let mut body = valid.clone();
        body[bit / 8] ^= 1 << (bit % 8);
        if send_raw(&mut sock, &body).is_err() || read_response(&mut sock).is_none() {
            // Server dropped the connection after a protocol error — that
            // is allowed; it must keep accepting new ones.
            sock = TcpStream::connect(addr).unwrap();
            send_raw(&mut sock, &hello_body()).unwrap();
            read_response(&mut sock).unwrap();
        }
    }
    drop(sock);
    assert_healthy(&mut control);
    assert_eq!(server.worker_panics(), 0);
    assert_eq!(graph.database().txns().active_snapshots(), 0);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let (_graph, server) = start_server();
    let addr = server.local_addr();
    let mut control = Client::connect(addr).unwrap();

    for len in [64 * 1024 + 1, u32::MAX as usize, 1 << 30] {
        let mut sock = TcpStream::connect(addr).unwrap();
        send_raw(&mut sock, &hello_body()).unwrap();
        read_response(&mut sock).unwrap();
        sock.write_all(&(len as u32).to_le_bytes()).unwrap();
        // The server must answer with TooLarge and close, without waiting
        // for (or allocating) the announced body.
        let resp = read_response(&mut sock).expect("expected TooLarge frame");
        let decoded = protocol::Response::decode(&resp).unwrap();
        match decoded {
            protocol::Response::Error { code, .. } => {
                assert_eq!(code, ErrorCode::TooLarge)
            }
            other => panic!("expected error frame, got {other:?}"),
        }
    }
    assert_healthy(&mut control);
    wait_active(&server, 1);
    server.shutdown();
}

#[test]
fn random_garbage_streams_never_panic() {
    let (_graph, server) = start_server();
    let addr = server.local_addr();
    let mut control = Client::connect(addr).unwrap();
    let mut rng = StdRng::seed_from_u64(0xBAD_F00D);

    for _ in 0..40 {
        let mut sock = TcpStream::connect(addr).unwrap();
        // Sometimes complete the handshake first so garbage reaches the
        // request decoder, not just the handshake gate.
        if rng.gen_bool(0.5) {
            send_raw(&mut sock, &hello_body()).unwrap();
            read_response(&mut sock).unwrap();
        }
        let n = rng.gen_range(1..200);
        let garbage: Vec<u8> = (0..n).map(|_| rng.gen_range(0..256u16) as u8).collect();
        let _ = sock.write_all(&garbage);
        // Half the time linger long enough for the server to process.
        if rng.gen_bool(0.5) {
            sock.set_read_timeout(Some(Duration::from_millis(50)))
                .unwrap();
            let mut buf = [0u8; 256];
            let _ = sock.read(&mut buf);
        }
        drop(sock);
    }
    assert_healthy(&mut control);
    wait_active(&server, 1);
    assert_eq!(server.worker_panics(), 0);
    server.shutdown();
}

#[test]
fn requests_before_handshake_are_rejected() {
    let (_graph, server) = start_server();
    let addr = server.local_addr();
    let mut sock = TcpStream::connect(addr).unwrap();
    let body = Request::QuerySql {
        sql: "SELECT 1".into(),
        params: vec![],
    }
    .encode();
    send_raw(&mut sock, &body).unwrap();
    let resp = read_response(&mut sock).unwrap();
    match protocol::Response::decode(&resp).unwrap() {
        protocol::Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn bad_token_is_rejected_with_auth_error() {
    let graph = small_graph();
    let cfg = ServerConfig {
        auth_token: "sesame".into(),
        ..ServerConfig::default()
    };
    let server = Server::start(graph, cfg).unwrap();
    let addr = server.local_addr();

    let err = Client::connect_with(addr, "wrong").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Auth));
    let mut ok = Client::connect_with(addr, "sesame").unwrap();
    ok.ping().unwrap();
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_with_open_transaction_rolls_back() {
    let (graph, server) = start_server();
    let addr = server.local_addr();
    let mut control = Client::connect(addr).unwrap();

    // Open a transaction over a raw socket, mutate, then vanish mid-frame.
    let mut sock = TcpStream::connect(addr).unwrap();
    send_raw(&mut sock, &hello_body()).unwrap();
    read_response(&mut sock).unwrap();
    send_raw(&mut sock, &Request::Begin.encode()).unwrap();
    read_response(&mut sock).unwrap();
    let add = Request::QueryGremlin {
        gremlin: "g.addVertex(['name':'doomed'])".into(),
    }
    .encode();
    send_raw(&mut sock, &add).unwrap();
    read_response(&mut sock).unwrap();
    // Announce a frame, send half, disappear.
    let next = Request::Commit.encode();
    sock.write_all(&(next.len() as u32).to_le_bytes()).unwrap();
    sock.write_all(&next[..next.len() / 2]).unwrap();
    drop(sock);

    // The provisional vertex must vanish with the session.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let n = graph.database().txns().active_snapshots();
        if n == 0 && server.open_transactions() == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "transaction leaked");
        std::thread::sleep(Duration::from_millis(10));
    }
    let count = control.query_gremlin("g.V.count()").unwrap();
    assert_eq!(count.rows, vec![vec![Value::Int(4)]], "rollback lost");
    assert_healthy(&mut control);
    server.shutdown();
}

#[test]
fn stalled_transaction_hits_idle_timeout_and_rolls_back() {
    let (graph, server) = start_server(); // txn_idle_timeout = 300ms
    let addr = server.local_addr();
    let mut control = Client::connect(addr).unwrap();

    let mut txn = Client::connect(addr).unwrap();
    txn.begin().unwrap();
    txn.query_gremlin("g.addVertex(['name':'stale'])").unwrap();
    // Stall past the transaction idle timeout: the server must roll back
    // and free the mutation lock so other writers proceed.
    std::thread::sleep(Duration::from_millis(800));
    control.begin().unwrap();
    control
        .query_gremlin("g.addVertex(['name':'fresh'])")
        .unwrap();
    control.commit().unwrap();
    let count = control.query_gremlin("g.V.count()").unwrap();
    assert_eq!(count.rows, vec![vec![Value::Int(5)]]);
    assert_eq!(graph.database().txns().active_snapshots(), 0);
    server.shutdown();
}
