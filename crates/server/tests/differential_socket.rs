//! Differential test: queries executed through real client sockets must be
//! byte-identical to in-process execution — the full Gremlin/SQL corpus,
//! then N concurrent sessions mixing autocommit statements with explicit
//! transactions, including first-updater-wins conflicts surfacing as typed
//! error frames.

use sqlgraph_core::{GraphData, SqlGraph};
use sqlgraph_json::Json;
use sqlgraph_rel::{Relation, Value};
use sqlgraph_server::{Client, ErrorCode, Server};
use std::sync::Arc;

/// Canonical rendering of a result multiset for comparison.
fn canon(rel: &Relation) -> Vec<String> {
    let mut out: Vec<String> = rel
        .rows
        .iter()
        .map(|r| r.iter().map(render_value).collect::<Vec<_>>().join("|"))
        .collect();
    out.sort();
    out
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i:{i}"),
        Value::Double(f) => format!("f:{f}"),
        Value::Str(s) => format!("s:{s}"),
        Value::Bool(b) => format!("b:{b}"),
        Value::Null => "null".into(),
        Value::Json(j) => format!("j:{j}"),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("a:[{}]", inner.join(","))
        }
    }
}

fn figure2_graph() -> GraphData {
    GraphData {
        vertices: vec![
            (
                1,
                vec![
                    ("name".into(), "marko".into()),
                    ("age".into(), Json::int(29)),
                ],
            ),
            (
                2,
                vec![
                    ("name".into(), "vadas".into()),
                    ("age".into(), Json::int(27)),
                ],
            ),
            (
                3,
                vec![
                    ("name".into(), "lop".into()),
                    ("lang".into(), "java".into()),
                ],
            ),
            (
                4,
                vec![
                    ("name".into(), "josh".into()),
                    ("age".into(), Json::int(32)),
                ],
            ),
        ],
        edges: vec![
            (
                1,
                1,
                2,
                "knows".into(),
                vec![("weight".into(), Json::float(0.5))],
            ),
            (
                2,
                1,
                4,
                "knows".into(),
                vec![("weight".into(), Json::float(1.0))],
            ),
            (
                3,
                1,
                3,
                "created".into(),
                vec![("weight".into(), Json::float(0.4))],
            ),
            (
                4,
                4,
                2,
                "likes".into(),
                vec![("weight".into(), Json::float(0.2))],
            ),
            (
                5,
                4,
                3,
                "created".into(),
                vec![("weight".into(), Json::float(0.8))],
            ),
        ],
    }
}

/// The same pipe-family corpus the in-process differential suite runs.
const CORPUS: &[&str] = &[
    "g.V",
    "g.E",
    "g.v(1)",
    "g.v(99)",
    "g.e(3)",
    "g.V.count()",
    "g.E.count()",
    "g.v(1).out",
    "g.v(1).out('knows')",
    "g.v(1).out('knows','created')",
    "g.v(3).in",
    "g.v(2).in('likes')",
    "g.v(4).both",
    "g.v(1).outE",
    "g.v(1).outE('knows')",
    "g.v(2).inE",
    "g.v(4).bothE",
    "g.v(1).outE('knows').inV",
    "g.e(4).outV",
    "g.e(4).inV",
    "g.e(4).bothV",
    "g.v(1).out.out",
    "g.v(1).out.out.count()",
    "g.v(1).out.in.dedup()",
    "g.V.has('age')",
    "g.V.hasNot('age')",
    "g.V.has('age', 29)",
    "g.V.has('age', T.gt, 28)",
    "g.V.has('age', T.lte, 29)",
    "g.V.has('age', T.neq, 29)",
    "g.V.has('name', 'lop')",
    "g.V('name','lop')",
    "g.V('name','lop').in('created')",
    "g.V.filter{it.age > 27 && it.age < 32}",
    "g.V.filter{it.name == 'lop' || it.name == 'vadas'}",
    "g.V.filter{it.name.contains('a')}",
    "g.V.interval('age', 27, 32)",
    "g.V.out.dedup()",
    "g.V.out.dedup().count()",
    "g.v(1).out('knows').values('name')",
    "g.v(1).values('age')",
    "g.v(1).outE.label.dedup()",
    "g.v(2).id",
    "g.E.has('weight', T.gte, 0.8)",
    "g.E.has('weight', T.lt, 0.5).inV",
    "g.v(1).out('knows').out.path",
    "g.v(1).out.both.simplePath.count()",
    "g.V.as('x').out('created').back('x')",
    "g.V.out('created').back(1)",
    "g.V.as('x').out('created').back('x').values('name')",
    "g.v(1).aggregate(x).out('knows').out.except(x)",
    "g.v(2).aggregate(x).in('knows').out.retain(x)",
    "g.V.and(_().out('knows'), _().out('created'))",
    "g.V.or(_().out('knows'), _().out('created'))",
    "g.v(1).copySplit(_().out('knows'), _().out('created')).fairMerge",
    "g.v(1).out.loop(1){it.loops < 2}",
    "g.v(1).out.loop(1){it.loops < 3}.count()",
    "g.V.as('s').out.loop('s'){it.loops < 2}.dedup()",
    "g.V.groupBy{it.name}{it}.count()",
    "g.V.table(t1).out.count()",
    "g.V.filter{it.tag=='w'}.both.dedup().count()",
    "g.V.has('age').ifThenElse{it.age > 28}{it.name}{it.age}",
];

fn figure2_server() -> (Arc<SqlGraph>, Server) {
    let graph = Arc::new(SqlGraph::new_in_memory());
    graph.bulk_load(&figure2_graph()).unwrap();
    let server = Server::start_local(Arc::clone(&graph)).unwrap();
    (graph, server)
}

#[test]
fn gremlin_corpus_matches_in_process_over_socket() {
    let (graph, server) = figure2_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for query in CORPUS {
        let local = graph.query(query).unwrap();
        let remote = client.query_gremlin(query).unwrap();
        assert_eq!(
            canon(&remote),
            canon(&local),
            "socket execution diverged on {query}"
        );
        // Column names travel too.
        assert_eq!(remote.columns, local.columns, "columns diverged on {query}");
    }
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn sql_queries_match_in_process_over_socket() {
    let (graph, server) = figure2_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let queries = [
        "SELECT vid, attr FROM va",
        "SELECT COUNT(*) FROM ea",
        "SELECT eid, outv, attr FROM ea WHERE inv = 1 AND lbl = 'knows'",
        "SELECT attr FROM va WHERE vid = 3",
    ];
    for sql in queries {
        let local = graph.database().execute(sql).unwrap();
        let remote = client.query_sql(sql).unwrap();
        assert_eq!(canon(&remote), canon(&local), "diverged on {sql}");
    }
    // Parameterized form through prepare/execute.
    let stmt = client.prepare("SELECT attr FROM va WHERE vid = ?").unwrap();
    for vid in 1..=4i64 {
        let local = graph
            .database()
            .execute_with_params("SELECT attr FROM va WHERE vid = ?", &[Value::Int(vid)])
            .unwrap();
        let remote = client.execute(stmt, &[Value::Int(vid)]).unwrap();
        assert_eq!(canon(&remote), canon(&local), "diverged on vid {vid}");
    }
    server.shutdown();
}

#[test]
fn sql_errors_reconstruct_the_engine_error() {
    let (graph, server) = figure2_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let bad = [
        "SELECT FROM nothing",
        "SELECT * FROM no_such_table",
        "INSERT INTO va VALUES (1)",
    ];
    for sql in bad {
        let local = graph.database().execute(sql).unwrap_err();
        let remote = client.query_sql(sql).unwrap_err();
        let rebuilt = remote
            .as_rel_error()
            .unwrap_or_else(|| panic!("no rel error for {sql}: {remote}"));
        assert_eq!(rebuilt, local, "error diverged on {sql}");
    }
    server.shutdown();
}

#[test]
fn gremlin_crud_inside_remote_transaction() {
    let (graph, server) = figure2_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Rolled-back work is invisible.
    client.begin().unwrap();
    client
        .query_gremlin("g.addVertex(['name':'phantom'])")
        .unwrap();
    assert_eq!(
        canon(&client.query_gremlin("g.V.count()").unwrap()),
        ["i:5"]
    );
    client.rollback().unwrap();
    assert_eq!(canon(&graph.query("g.V.count()").unwrap()), ["i:4"]);
    assert_eq!(
        canon(&client.query_gremlin("g.V.count()").unwrap()),
        ["i:4"]
    );

    // Committed work is visible both in-process and remotely. Vertex id
    // counters survive rollback, so use the id the server returns.
    client.begin().unwrap();
    let added = client
        .query_gremlin("g.addVertex(['name':'ripple','lang':'java'])")
        .unwrap();
    let Value::Int(vid) = added.rows[0][0] else {
        panic!("addVertex should return the new id, got {added:?}");
    };
    client
        .query_gremlin(&format!("g.addEdge(4, {vid}, 'created', ['weight':1.0])"))
        .unwrap();
    client.commit().unwrap();
    assert_eq!(canon(&graph.query("g.V.count()").unwrap()), ["i:5"]);
    assert_eq!(
        canon(&graph.query("g.v(4).out('created').values('name')").unwrap()),
        ["s:lop", "s:ripple"]
    );
    assert_eq!(
        canon(
            &client
                .query_gremlin("g.v(4).out('created').values('name')")
                .unwrap()
        ),
        ["s:lop", "s:ripple"]
    );
    server.shutdown();
}

#[test]
fn first_updater_wins_conflict_comes_back_as_typed_error_frame() {
    let (graph, server) = figure2_server();
    let mut txn_client = Client::connect(server.local_addr()).unwrap();
    let mut other = Client::connect(server.local_addr()).unwrap();

    // Open a remote transaction (snapshot taken now).
    txn_client.begin().unwrap();
    assert_eq!(
        canon(
            &txn_client
                .query_sql("SELECT vid FROM va WHERE vid = 2")
                .unwrap()
        ),
        ["i:2"]
    );
    // A second session updates the same row via autocommit SQL (this path
    // does not take the graph mutation lock, so it runs concurrently).
    other
        .query_sql_with_params(
            "UPDATE va SET attr = ? WHERE vid = 2",
            &[Value::json(
                sqlgraph_json::parse("{\"name\":\"vadas2\"}").unwrap(),
            )],
        )
        .unwrap();
    // The open transaction is now the second updater: first-updater-wins
    // must surface as a typed TxnConflict error frame, and the server
    // must roll the transaction back.
    let err = txn_client
        .query_sql_with_params(
            "UPDATE va SET attr = ? WHERE vid = 2",
            &[Value::json(
                sqlgraph_json::parse("{\"name\":\"vadas3\"}").unwrap(),
            )],
        )
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::TxnConflict), "got {err}");
    assert!(matches!(
        err.as_rel_error(),
        Some(sqlgraph_rel::Error::TxnConflict(_))
    ));
    assert!(!txn_client.in_transaction());

    // The session is usable again in autocommit mode, the other writer's
    // update survived, and no snapshot leaked.
    assert_eq!(
        canon(
            &txn_client
                .query_sql("SELECT attr FROM va WHERE vid = 2")
                .unwrap()
        ),
        canon(
            &graph
                .database()
                .execute("SELECT attr FROM va WHERE vid = 2")
                .unwrap()
        )
    );
    assert_eq!(graph.database().txns().active_snapshots(), 0);
    server.shutdown();
}

#[test]
fn concurrent_sessions_mixing_autocommit_and_transactions() {
    let (graph, server) = figure2_server();
    let addr = server.local_addr();
    let readers = 6;
    let writers = 2;

    std::thread::scope(|s| {
        // Readers hammer the corpus' read-only prefix through sockets.
        for t in 0..readers {
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..15 {
                    let q = CORPUS[(t * 7 + round * 3) % 40]; // read-only prefix
                    client.query_gremlin(q).unwrap();
                }
                client.close().unwrap();
            });
        }
        // Writers run explicit transactions; the store's mutation lock
        // serializes them, so each either commits or observes Busy when
        // the acquire deadline passes under contention.
        for w in 0..writers {
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..5 {
                    client.begin().unwrap();
                    client
                        .query_gremlin(&format!("g.addVertex(['name':'w{w}r{round}'])"))
                        .unwrap();
                    if round % 2 == 0 {
                        client.commit().unwrap();
                    } else {
                        client.rollback().unwrap();
                    }
                }
                client.close().unwrap();
            });
        }
    });

    // 2 writers × 3 committed rounds each (0, 2, 4) on top of 4 vertices.
    assert_eq!(canon(&graph.query("g.V.count()").unwrap()), ["i:10"]);
    assert_eq!(graph.database().txns().active_snapshots(), 0);
    assert_eq!(server.open_transactions(), 0);
    server.shutdown();
}
