//! Wire protocol: length-prefixed frames with a one-byte opcode.
//!
//! ## Frame grammar
//!
//! ```text
//! frame    := len:u32le body              (len = body length in bytes)
//! body     := opcode:u8 payload
//! str      := len:u32le utf8-bytes
//! value    := 0x00                        NULL
//!           | 0x01 b:u8                   BOOL (0/1)
//!           | 0x02 i:i64le                INT
//!           | 0x03 bits:u64le             DOUBLE (f64 bit pattern)
//!           | 0x04 s:str                  STRING
//!           | 0x05 s:str                  JSON (compact rendering)
//!           | 0x06 n:u32le value*n        ARRAY
//! values   := n:u32le value*n
//! ```
//!
//! Requests (client → server):
//!
//! ```text
//! 0x01 Hello        proto:u8 token:str
//! 0x02 QuerySql     sql:str params:values
//! 0x03 QueryGremlin gremlin:str
//! 0x04 Prepare      sql:str
//! 0x05 Execute      stmt:u32le params:values
//! 0x06 Begin | 0x07 Commit | 0x08 Rollback | 0x09 Ping | 0x0A Close
//! ```
//!
//! Responses (server → client):
//!
//! ```text
//! 0x81 HelloOk      session:u64le
//! 0x82 ResultSet    stmts:u64le ncols:u32le col:str*ncols nrows:u32le row:value*ncols*nrows
//! 0x83 Error        code:u8 aux:u32le message:str
//! 0x84 PrepareOk    stmt:u32le
//! 0x85 Ok           stmts:u64le
//! ```
//!
//! `stmts` is the session's transaction statement counter after the
//! request (cumulative while an explicit transaction is open, the
//! statement count of the request itself in autocommit) — the client uses
//! it to charge round trips exactly like the in-process
//! `Txn::statements_executed` accounting.
//!
//! Error codes 1–8 are `sqlgraph_rel::Error`'s `wire_code` space; the
//! server layers store- and protocol-level codes above it (see
//! [`ErrorCode`]).

use sqlgraph_core::CoreError;
use sqlgraph_rel::{Error as RelError, Relation, Value};
use std::io::{Read, Write};
use std::sync::Arc;

/// Default cap on one frame's body (both sides enforce it).
pub const MAX_FRAME_DEFAULT: usize = 4 << 20;

/// Protocol version spoken by this crate.
pub const PROTO_VERSION: u8 = 1;

/// Typed error-frame codes. 1–8 mirror [`sqlgraph_rel::Error::wire_code`];
/// the rest are store/server level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// SQL parse error (aux = byte offset).
    Parse = 1,
    /// Unknown table/column/index/procedure.
    NotFound = 2,
    /// Schema violation.
    Schema = 3,
    /// Type mismatch.
    Type = 4,
    /// Invalid request (bad parameter, BEGIN inside a transaction, …).
    Invalid = 5,
    /// WAL I/O or corruption: the commit's durability is indeterminate
    /// until the store is reopened.
    Wal = 6,
    /// Transaction rolled back.
    RolledBack = 7,
    /// First-updater-wins snapshot-isolation conflict; the server rolled
    /// the transaction back, retry from `BEGIN`.
    TxnConflict = 8,
    /// Gremlin query not translatable in this context.
    Unsupported = 20,
    /// Graph-level error (missing vertex/edge, …).
    Graph = 21,
    /// Gremlin parse error.
    Gremlin = 22,
    /// Malformed frame; the server closes the connection after sending.
    Protocol = 30,
    /// Handshake rejected.
    Auth = 31,
    /// Frame exceeds the size limit; connection closed after sending.
    TooLarge = 32,
    /// Server at a concurrency limit (e.g. open-transaction cap); retry.
    Busy = 33,
    /// Server is draining; no new work accepted.
    ShuttingDown = 34,
    /// Session or transaction idle timeout; connection closed.
    Timeout = 35,
    /// The worker servicing the request panicked; the request's effects
    /// (if any) were rolled back with the session.
    Internal = 36,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_u8(code: u8) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::Parse,
            2 => ErrorCode::NotFound,
            3 => ErrorCode::Schema,
            4 => ErrorCode::Type,
            5 => ErrorCode::Invalid,
            6 => ErrorCode::Wal,
            7 => ErrorCode::RolledBack,
            8 => ErrorCode::TxnConflict,
            20 => ErrorCode::Unsupported,
            21 => ErrorCode::Graph,
            22 => ErrorCode::Gremlin,
            30 => ErrorCode::Protocol,
            31 => ErrorCode::Auth,
            32 => ErrorCode::TooLarge,
            33 => ErrorCode::Busy,
            34 => ErrorCode::ShuttingDown,
            35 => ErrorCode::Timeout,
            36 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A client request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: protocol version + auth token (stub: compared against
    /// the server's configured token, empty by default).
    Hello { proto: u8, token: String },
    /// One SQL statement with positional `?` parameters.
    QuerySql { sql: String, params: Vec<Value> },
    /// One Gremlin statement (traversal or CRUD).
    QueryGremlin { gremlin: String },
    /// Validate a statement and bind it to a session-local id.
    Prepare { sql: String },
    /// Execute a previously prepared statement.
    Execute { stmt: u32, params: Vec<Value> },
    /// Open an explicit transaction.
    Begin,
    /// Commit the open transaction.
    Commit,
    /// Roll back the open transaction.
    Rollback,
    /// Liveness probe.
    Ping,
    /// Graceful connection end.
    Close,
}

/// A server response frame.
#[derive(Debug, Clone)]
pub enum Response {
    /// Handshake accepted.
    HelloOk { session: u64 },
    /// Rows from a query, plus the statement counter (see module docs).
    ResultSet { stmts: u64, rel: Relation },
    /// Typed error.
    Error {
        code: ErrorCode,
        aux: u32,
        message: String,
    },
    /// Statement prepared.
    PrepareOk { stmt: u32 },
    /// Statement-less success (Begin/Commit/Rollback/Ping/Close).
    Ok { stmts: u64 },
}

/// Malformed frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(3);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Json(j) => {
            out.push(5);
            put_str(out, &j.to_string());
        }
        Value::Array(items) => {
            out.push(6);
            put_u32(out, items.len() as u32);
            for item in items.iter() {
                put_value(out, item);
            }
        }
    }
}

fn put_values(out: &mut Vec<u8>, vals: &[Value]) {
    put_u32(out, vals.len() as u32);
    for v in vals {
        put_value(out, v);
    }
}

/// Bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn err<T>(&self, what: &str) -> Result<T, DecodeError> {
        Err(DecodeError(format!("{what} at byte {}", self.pos)))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return self.err("truncated");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, DecodeError> {
        let len = self.u32()? as usize;
        if self.buf.len() - self.pos < len {
            return self.err("truncated string");
        }
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|_| DecodeError(format!("invalid utf-8 string ending at byte {}", self.pos)))
    }

    fn value(&mut self, depth: usize) -> Result<Value, DecodeError> {
        if depth > 32 {
            return self.err("value nesting too deep");
        }
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Double(f64::from_bits(self.u64()?)),
            4 => Value::str(self.str()?),
            5 => {
                let text = self.str()?;
                let json = sqlgraph_json::parse(text)
                    .map_err(|e| DecodeError(format!("bad json value: {e:?}")))?;
                Value::json(json)
            }
            6 => {
                let n = self.u32()? as usize;
                // A count can't exceed the remaining bytes (each element
                // is ≥ 1 byte) — reject before allocating.
                if n > self.buf.len() - self.pos {
                    return self.err("array count exceeds frame");
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value(depth + 1)?);
                }
                Value::Array(Arc::new(items))
            }
            t => return Err(DecodeError(format!("unknown value tag {t}"))),
        })
    }

    fn values(&mut self) -> Result<Vec<Value>, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return self.err("value count exceeds frame");
        }
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(self.value(0)?);
        }
        Ok(vals)
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError(format!(
                "{} trailing bytes after frame payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

impl Request {
    /// Encode to a frame body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { proto, token } => {
                out.push(0x01);
                out.push(*proto);
                put_str(&mut out, token);
            }
            Request::QuerySql { sql, params } => {
                out.push(0x02);
                put_str(&mut out, sql);
                put_values(&mut out, params);
            }
            Request::QueryGremlin { gremlin } => {
                out.push(0x03);
                put_str(&mut out, gremlin);
            }
            Request::Prepare { sql } => {
                out.push(0x04);
                put_str(&mut out, sql);
            }
            Request::Execute { stmt, params } => {
                out.push(0x05);
                put_u32(&mut out, *stmt);
                put_values(&mut out, params);
            }
            Request::Begin => out.push(0x06),
            Request::Commit => out.push(0x07),
            Request::Rollback => out.push(0x08),
            Request::Ping => out.push(0x09),
            Request::Close => out.push(0x0A),
        }
        out
    }

    /// Decode a frame body.
    pub fn decode(body: &[u8]) -> Result<Request, DecodeError> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            0x01 => Request::Hello {
                proto: c.u8()?,
                token: c.str()?.to_string(),
            },
            0x02 => Request::QuerySql {
                sql: c.str()?.to_string(),
                params: c.values()?,
            },
            0x03 => Request::QueryGremlin {
                gremlin: c.str()?.to_string(),
            },
            0x04 => Request::Prepare {
                sql: c.str()?.to_string(),
            },
            0x05 => Request::Execute {
                stmt: c.u32()?,
                params: c.values()?,
            },
            0x06 => Request::Begin,
            0x07 => Request::Commit,
            0x08 => Request::Rollback,
            0x09 => Request::Ping,
            0x0A => Request::Close,
            op => return Err(DecodeError(format!("unknown request opcode {op:#04x}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode to a frame body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::HelloOk { session } => {
                out.push(0x81);
                put_u64(&mut out, *session);
            }
            Response::ResultSet { stmts, rel } => {
                out.push(0x82);
                put_u64(&mut out, *stmts);
                put_u32(&mut out, rel.columns.len() as u32);
                for col in &rel.columns {
                    put_str(&mut out, col);
                }
                put_u32(&mut out, rel.rows.len() as u32);
                for row in &rel.rows {
                    for v in row {
                        put_value(&mut out, v);
                    }
                }
            }
            Response::Error { code, aux, message } => {
                out.push(0x83);
                out.push(*code as u8);
                put_u32(&mut out, *aux);
                put_str(&mut out, message);
            }
            Response::PrepareOk { stmt } => {
                out.push(0x84);
                put_u32(&mut out, *stmt);
            }
            Response::Ok { stmts } => {
                out.push(0x85);
                put_u64(&mut out, *stmts);
            }
        }
        out
    }

    /// Decode a frame body.
    pub fn decode(body: &[u8]) -> Result<Response, DecodeError> {
        let mut c = Cursor::new(body);
        let resp = match c.u8()? {
            0x81 => Response::HelloOk { session: c.u64()? },
            0x82 => {
                let stmts = c.u64()?;
                let ncols = c.u32()? as usize;
                if ncols > body.len() {
                    return c.err("column count exceeds frame");
                }
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(c.str()?.to_string());
                }
                let nrows = c.u32()? as usize;
                if nrows > body.len() {
                    return c.err("row count exceeds frame");
                }
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        row.push(c.value(0)?);
                    }
                    rows.push(row);
                }
                Response::ResultSet {
                    stmts,
                    rel: Relation::new(columns, rows),
                }
            }
            0x83 => {
                let raw = c.u8()?;
                let code = ErrorCode::from_u8(raw)
                    .ok_or_else(|| DecodeError(format!("unknown error code {raw}")))?;
                Response::Error {
                    code,
                    aux: c.u32()?,
                    message: c.str()?.to_string(),
                }
            }
            0x84 => Response::PrepareOk { stmt: c.u32()? },
            0x85 => Response::Ok { stmts: c.u64()? },
            op => return Err(DecodeError(format!("unknown response opcode {op:#04x}"))),
        };
        c.finish()?;
        Ok(resp)
    }

    /// The typed error frame for a store error.
    pub fn from_core_error(e: &CoreError) -> Response {
        match e {
            CoreError::Rel(rel) => Response::from_rel_error(rel),
            CoreError::Gremlin(g) => Response::Error {
                code: ErrorCode::Gremlin,
                aux: 0,
                message: g.to_string(),
            },
            CoreError::Graph(g) => Response::Error {
                code: ErrorCode::Graph,
                aux: 0,
                message: g.to_string(),
            },
            CoreError::Unsupported(msg) => Response::Error {
                code: ErrorCode::Unsupported,
                aux: 0,
                message: msg.clone(),
            },
        }
    }

    /// The typed error frame for an engine error.
    pub fn from_rel_error(e: &RelError) -> Response {
        Response::Error {
            code: ErrorCode::from_u8(e.wire_code()).expect("rel codes are 1-8"),
            aux: e.wire_aux(),
            message: e.wire_message().to_string(),
        }
    }
}

// ---------------------------------------------------------------------
// Blocking frame I/O (client side and tests; the server reads frames
// non-blockingly in its dispatcher)
// ---------------------------------------------------------------------

/// Write one frame: length prefix + body.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Read one frame body, rejecting bodies over `max` bytes.
pub fn read_frame(r: &mut impl Read, max: usize) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > max {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {max}"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Double(2.5),
            Value::Double(f64::NAN),
            Value::str("héllo 'quoted'"),
            Value::json(sqlgraph_json::parse(r#"{"a":[1,2.5,"x"],"b":null}"#).unwrap()),
            Value::Array(Arc::new(vec![Value::Int(1), Value::str("two")])),
        ]
    }

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request::Hello {
                proto: PROTO_VERSION,
                token: "secret".into(),
            },
            Request::QuerySql {
                sql: "SELECT * FROM va WHERE vid = ?".into(),
                params: sample_values(),
            },
            Request::QueryGremlin {
                gremlin: "g.V.out('knows').name".into(),
            },
            Request::Prepare {
                sql: "SELECT 1".into(),
            },
            Request::Execute {
                stmt: 7,
                params: vec![Value::Int(3)],
            },
            Request::Begin,
            Request::Commit,
            Request::Rollback,
            Request::Ping,
            Request::Close,
        ];
        for req in reqs {
            let body = req.encode();
            let back = Request::decode(&body).unwrap();
            // NaN != NaN under PartialEq; compare debug renderings.
            assert_eq!(format!("{back:?}"), format!("{req:?}"));
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = vec![
            Response::HelloOk { session: 12 },
            Response::ResultSet {
                stmts: 3,
                rel: Relation::new(
                    vec!["a".into(), "b".into()],
                    vec![
                        vec![Value::Int(1), Value::str("x")],
                        vec![Value::Null, Value::Double(0.5)],
                    ],
                ),
            },
            Response::Error {
                code: ErrorCode::TxnConflict,
                aux: 0,
                message: "vid 3".into(),
            },
            Response::PrepareOk { stmt: 9 },
            Response::Ok { stmts: 5 },
        ];
        for resp in resps {
            let body = resp.encode();
            // `Relation` has no `PartialEq`; Debug strings are faithful.
            assert_eq!(
                format!("{:?}", Response::decode(&body).unwrap()),
                format!("{resp:?}")
            );
        }
    }

    #[test]
    fn rel_error_codes_roundtrip() {
        let errs = vec![
            RelError::Parse {
                offset: 17,
                message: "bad token".into(),
            },
            RelError::NotFound("table q".into()),
            RelError::TxnConflict("vid 9".into()),
        ];
        for e in errs {
            let frame = Response::from_rel_error(&e);
            let Response::Error { code, aux, message } = &frame else {
                panic!("not an error frame");
            };
            let back = RelError::from_wire(*code as u8, *aux, message).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn truncation_never_panics() {
        // Every prefix of a valid frame decodes to a clean error.
        let body = Request::QuerySql {
            sql: "SELECT attr FROM va WHERE vid = ?".into(),
            params: sample_values(),
        }
        .encode();
        for cut in 0..body.len() {
            assert!(Request::decode(&body[..cut]).is_err());
        }
        let body = Response::ResultSet {
            stmts: 1,
            rel: Relation::new(vec!["v".into()], vec![vec![Value::str("x")]]),
        }
        .encode();
        for cut in 0..body.len() {
            assert!(Response::decode(&body[..cut]).is_err());
        }
    }

    #[test]
    fn bitflips_never_panic() {
        let body = Request::QuerySql {
            sql: "SELECT 1".into(),
            params: vec![Value::Int(5), Value::str("abc")],
        }
        .encode();
        for i in 0..body.len() {
            for bit in 0..8 {
                let mut mutated = body.clone();
                mutated[i] ^= 1 << bit;
                // Must not panic; decoding may succeed (benign flip) or fail.
                let _ = Request::decode(&mutated);
            }
        }
    }

    #[test]
    fn oversized_count_rejected_without_allocation() {
        // values-count field claims 4 billion entries; decode must reject
        // rather than try to allocate.
        let mut body = vec![0x02];
        put_str(&mut body, "SELECT 1");
        put_u32(&mut body, u32::MAX);
        assert!(Request::decode(&body).is_err());
    }
}
