//! The wire-protocol server: accept thread + frame dispatcher + bounded
//! worker pool, with dedicated session threads for open transactions.
//!
//! ## Threading model
//!
//! * **Accept thread** — non-blocking `accept` loop; hands sockets to the
//!   dispatcher over a channel. Refuses connections over the cap.
//! * **Dispatcher thread** — owns every connection's read half
//!   (non-blocking). Each sweep it drains readable sockets into
//!   per-connection buffers, cuts complete frames, and routes them: to the
//!   session's transaction thread if one is open, otherwise onto the
//!   bounded worker pool's MPMC queue. One frame per connection is in
//!   flight at a time (later frames stay buffered — pipelining works, but
//!   responses come back in order). The dispatcher also enforces frame
//!   size limits and idle timeouts, and runs the graceful drain.
//! * **Worker pool** — `workers` threads executing autocommit requests.
//!   The pool is deliberately small (default ≲ the core count): hundreds
//!   of sockets multiplex onto it, and the statements themselves can fan
//!   out through `rel::parallel`'s morsel workers, so an oversized pool
//!   would oversubscribe the machine.
//! * **Transaction threads** — `BEGIN` moves the session onto a dedicated
//!   thread that owns the `GraphTxn` until commit/rollback. At most one
//!   graph transaction runs at a time (the store's mutation lock is
//!   exclusive), so these threads mostly wait; they exist so a transaction
//!   blocked on the mutation lock can never starve the worker pool that
//!   must process the lock holder's `COMMIT`. Sessions queued on `BEGIN`
//!   poll [`SqlGraph::try_transaction`] so shutdown can interrupt them.
//!
//! Dropping the [`Server`] (or calling [`Server::shutdown`]) drains:
//! in-flight requests finish and their responses are flushed, open
//! transactions roll back, then sockets close.

use crate::protocol::{ErrorCode, Request, Response, MAX_FRAME_DEFAULT, PROTO_VERSION};
use parking_lot::Mutex;
use sqlgraph_core::{CoreError, GraphTxn, SqlGraph};
use sqlgraph_rel::{Relation, Value};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs. `Default` is sized for tests and the bench harness.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub bind: SocketAddr,
    /// Worker-pool size for autocommit requests.
    pub workers: usize,
    /// Per-frame body size limit (both directions).
    pub max_frame: usize,
    /// Expected handshake token (empty = accept any empty token).
    pub auth_token: String,
    /// Close connections idle longer than this (no open transaction).
    pub idle_timeout: Duration,
    /// Roll back and close a session whose open transaction sits idle
    /// longer than this — a stalled client cannot wedge the store's
    /// mutation lock forever.
    pub txn_idle_timeout: Duration,
    /// Give up on `BEGIN` if the store transaction cannot be acquired
    /// within this long (another session holds it).
    pub txn_acquire_timeout: Duration,
    /// Refuse sockets beyond this many concurrent connections.
    pub max_connections: usize,
    /// Refuse `BEGIN` beyond this many concurrently open transactions
    /// (each costs a thread parked on the mutation lock).
    pub max_txn_sessions: usize,
    /// Upper bound on the graceful drain at shutdown.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServerConfig {
            bind: "127.0.0.1:0".parse().expect("literal addr"),
            workers: cores.clamp(2, 8),
            max_frame: MAX_FRAME_DEFAULT,
            auth_token: String::new(),
            idle_timeout: Duration::from_secs(60),
            txn_idle_timeout: Duration::from_secs(5),
            txn_acquire_timeout: Duration::from_secs(10),
            max_connections: 2048,
            max_txn_sessions: 64,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Monotone counters exposed for tests and monitoring.
#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    active: AtomicUsize,
    open_txns: AtomicUsize,
    frames: AtomicU64,
    proto_errors: AtomicU64,
    panics: AtomicU64,
}

struct Shared {
    engine: Arc<SqlGraph>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    stats: Stats,
}

/// Message to a session's transaction thread.
enum TxnMsg {
    Frame(Vec<u8>),
}

/// Mutable per-session state, shared by dispatcher / workers / txn thread.
struct SessState {
    hello: bool,
    next_stmt: u32,
    stmts: HashMap<u32, String>,
    /// `Some` while an explicit transaction is open: frames route to the
    /// transaction thread behind this sender.
    txn: Option<mpsc::Sender<TxnMsg>>,
}

/// One connection's session, shared across threads via `Arc`.
struct Sess {
    id: u64,
    /// Write half (cloned handle; non-blocking like the read half).
    wr: Mutex<TcpStream>,
    state: Mutex<SessState>,
    /// Exactly one request per connection is processed at a time.
    in_flight: AtomicBool,
    /// Set to close the connection once the in-flight request finishes.
    kill: AtomicBool,
}

impl Sess {
    /// Serialize and send a response; on write failure mark the
    /// connection dead (the dispatcher reaps it).
    fn reply(&self, resp: &Response) {
        let body = resp.encode();
        let mut wr = self.wr.lock();
        if write_frame_nb(&mut wr, &body, Duration::from_secs(10)).is_err() {
            self.kill.store(true, Ordering::Release);
        }
    }

    fn reply_error(&self, code: ErrorCode, message: impl Into<String>) {
        self.reply(&Response::Error {
            code,
            aux: 0,
            message: message.into(),
        });
    }
}

/// A running server. Dropping it performs a graceful shutdown.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `engine` with default configuration on an
    /// ephemeral loopback port.
    pub fn start_local(engine: Arc<SqlGraph>) -> std::io::Result<Server> {
        Server::start(engine, ServerConfig::default())
    }

    /// Bind and start serving.
    pub fn start(engine: Arc<SqlGraph>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            cfg,
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
        });

        let (conn_tx, conn_rx) = crossbeam::channel::unbounded::<TcpStream>();
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sqlgraph-accept".into())
                .spawn(move || accept_loop(&shared, listener, conn_tx))?
        };
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sqlgraph-dispatch".into())
                .spawn(move || dispatch_loop(&shared, conn_rx, job_tx))?
        };
        let mut workers = Vec::new();
        for i in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            let rx = job_rx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sqlgraph-worker-{i}"))
                    .spawn(move || worker_loop(&shared, rx))?,
            );
        }
        drop(job_rx);
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Size of the worker pool serving autocommit requests.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Currently open connections.
    pub fn active_connections(&self) -> usize {
        self.shared.stats.active.load(Ordering::Acquire)
    }

    /// Currently open explicit transactions.
    pub fn open_transactions(&self) -> usize {
        self.shared.stats.open_txns.load(Ordering::Acquire)
    }

    /// Total frames dispatched.
    pub fn frames_processed(&self) -> u64 {
        self.shared.stats.frames.load(Ordering::Acquire)
    }

    /// Malformed frames / handshake violations seen.
    pub fn protocol_errors(&self) -> u64 {
        self.shared.stats.proto_errors.load(Ordering::Acquire)
    }

    /// Request handlers that panicked (each replied `Internal` and closed
    /// only its own connection).
    pub fn worker_panics(&self) -> u64 {
        self.shared.stats.panics.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish
    /// and flush their responses, roll back open transactions, close
    /// sockets, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Transaction threads are detached; the dispatcher's drain waited
        // for open_txns to hit zero (bounded by drain_timeout).
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---------------------------------------------------------------------
// Accept thread
// ---------------------------------------------------------------------

fn accept_loop(
    shared: &Shared,
    listener: TcpListener,
    conn_tx: crossbeam::channel::Sender<TcpStream>,
) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((sock, _)) => {
                if shared.stats.active.load(Ordering::Acquire) >= shared.cfg.max_connections {
                    drop(sock); // refuse: over the cap
                    continue;
                }
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                if conn_tx.send(sock).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

// ---------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------

struct Job {
    sess: Arc<Sess>,
    body: Vec<u8>,
}

struct Conn {
    sock: TcpStream,
    buf: Vec<u8>,
    sess: Arc<Sess>,
    last: Instant,
    /// Client half-closed; reap once the in-flight request finishes.
    eof: bool,
}

fn dispatch_loop(
    shared: &Arc<Shared>,
    conn_rx: crossbeam::channel::Receiver<TcpStream>,
    job_tx: crossbeam::channel::Sender<Job>,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;
    let mut scratch = vec![0u8; 64 * 1024];

    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let mut progressed = false;

        // Adopt new connections.
        while let Ok(sock) = conn_rx.try_recv() {
            if sock.set_nonblocking(true).is_err() {
                continue;
            }
            let Ok(wr) = sock.try_clone() else { continue };
            let id = next_id;
            next_id += 1;
            let sess = Arc::new(Sess {
                id,
                wr: Mutex::new(wr),
                state: Mutex::new(SessState {
                    hello: false,
                    next_stmt: 1,
                    stmts: HashMap::new(),
                    txn: None,
                }),
                in_flight: AtomicBool::new(false),
                kill: AtomicBool::new(false),
            });
            shared.stats.active.fetch_add(1, Ordering::AcqRel);
            conns.insert(
                id,
                Conn {
                    sock,
                    buf: Vec::new(),
                    sess,
                    last: Instant::now(),
                    eof: false,
                },
            );
            progressed = true;
        }

        let mut dead: Vec<u64> = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            let in_flight = conn.sess.in_flight.load(Ordering::Acquire);
            if conn.sess.kill.load(Ordering::Acquire) && !in_flight {
                dead.push(id);
                continue;
            }

            // Pull bytes. Cap buffering at one max frame plus headroom so a
            // pipelining client cannot balloon memory.
            if conn.buf.len() < shared.cfg.max_frame + 4 {
                match conn.sock.read(&mut scratch) {
                    Ok(0) => {
                        conn.eof = true;
                        if !in_flight {
                            dead.push(id);
                            continue;
                        }
                    }
                    Ok(n) => {
                        conn.buf.extend_from_slice(&scratch[..n]);
                        conn.last = Instant::now();
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(_) => {
                        dead.push(id);
                        continue;
                    }
                }
            }

            // Cut and route one frame if the session is free.
            if !conn.sess.in_flight.load(Ordering::Acquire) && conn.buf.len() >= 4 {
                let len = u32::from_le_bytes(conn.buf[..4].try_into().unwrap()) as usize;
                if len > shared.cfg.max_frame {
                    shared.stats.proto_errors.fetch_add(1, Ordering::Relaxed);
                    conn.sess.reply_error(
                        ErrorCode::TooLarge,
                        format!(
                            "frame of {len} bytes exceeds limit {}",
                            shared.cfg.max_frame
                        ),
                    );
                    dead.push(id);
                    continue;
                }
                if conn.buf.len() >= 4 + len {
                    let body: Vec<u8> = conn.buf.drain(..4 + len).skip(4).collect();
                    conn.sess.in_flight.store(true, Ordering::Release);
                    shared.stats.frames.fetch_add(1, Ordering::Relaxed);
                    conn.last = Instant::now();
                    progressed = true;
                    route(&conn.sess, body, &job_tx);
                }
            }

            // Idle reaping (transaction idleness is handled by the
            // transaction thread's own recv timeout).
            let has_txn = conn.sess.state.lock().txn.is_some();
            if !in_flight && !has_txn && !conn.eof && conn.last.elapsed() > shared.cfg.idle_timeout
            {
                conn.sess.reply_error(ErrorCode::Timeout, "idle timeout");
                dead.push(id);
            }
        }
        for id in dead {
            if let Some(conn) = conns.remove(&id) {
                close_conn(shared, conn);
            }
        }

        if !progressed {
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    drain(shared, conns, job_tx);
}

/// Route one complete frame: transaction thread if the session has one,
/// otherwise the worker pool.
fn route(sess: &Arc<Sess>, body: Vec<u8>, job_tx: &crossbeam::channel::Sender<Job>) {
    let st = sess.state.lock();
    if let Some(tx) = &st.txn {
        if tx.send(TxnMsg::Frame(body)).is_ok() {
            return;
        }
        // The transaction thread already exited (idle timeout); it set
        // `kill`, so just release the in-flight slot and let the reaper
        // close the connection.
        drop(st);
        sess.in_flight.store(false, Ordering::Release);
        sess.kill.store(true, Ordering::Release);
        return;
    }
    drop(st);
    let _ = job_tx.send(Job {
        sess: Arc::clone(sess),
        body,
    });
}

fn close_conn(shared: &Shared, conn: Conn) {
    // Dropping the transaction sender makes the session's transaction
    // thread roll back and exit.
    conn.sess.state.lock().txn = None;
    shared.stats.active.fetch_sub(1, Ordering::AcqRel);
    let _ = conn.sock.shutdown(std::net::Shutdown::Both);
}

/// Graceful drain: let in-flight requests finish and flush, roll back
/// open transactions, then close every socket.
fn drain(
    shared: &Arc<Shared>,
    mut conns: HashMap<u64, Conn>,
    job_tx: crossbeam::channel::Sender<Job>,
) {
    let deadline = Instant::now() + shared.cfg.drain_timeout;

    // Wait for in-flight autocommit requests (their responses flush from
    // the worker threads). Keep `job_tx` alive until they finish so the
    // workers' queue does not disconnect under them.
    while Instant::now() < deadline
        && conns
            .values()
            .any(|c| c.sess.in_flight.load(Ordering::Acquire))
    {
        std::thread::sleep(Duration::from_micros(200));
    }
    drop(job_tx);

    // Drop transaction senders: session threads observe the disconnect,
    // roll back, and clear the open-transaction gauge.
    for conn in conns.values() {
        conn.sess.state.lock().txn = None;
    }
    while Instant::now() < deadline && shared.stats.open_txns.load(Ordering::Acquire) > 0 {
        std::thread::sleep(Duration::from_micros(200));
    }

    for (_, conn) in conns.drain() {
        conn.sess
            .reply_error(ErrorCode::ShuttingDown, "server shutting down");
        close_conn(shared, conn);
    }
}

// ---------------------------------------------------------------------
// Worker pool (autocommit requests)
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, rx: crossbeam::channel::Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_autocommit(shared, &job)));
        match outcome {
            // `true` means a transaction thread took over the session and
            // owns the in-flight slot now.
            Ok(true) => {}
            Ok(false) => job.sess.in_flight.store(false, Ordering::Release),
            Err(_) => {
                shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                job.sess
                    .reply_error(ErrorCode::Internal, "request handler panicked");
                job.sess.kill.store(true, Ordering::Release);
                job.sess.in_flight.store(false, Ordering::Release);
            }
        }
    }
}

/// SQL text forms of the transaction-control frames, accepted through
/// `QuerySql` for clients that speak plain SQL.
enum SqlClass<'a> {
    Begin,
    Commit,
    Rollback,
    Other(&'a str),
}

fn classify(sql: &str) -> SqlClass<'_> {
    let t = sql.trim().trim_end_matches(';').trim();
    if t.eq_ignore_ascii_case("begin") {
        SqlClass::Begin
    } else if t.eq_ignore_ascii_case("commit") {
        SqlClass::Commit
    } else if t.eq_ignore_ascii_case("rollback") {
        SqlClass::Rollback
    } else {
        SqlClass::Other(sql)
    }
}

/// Handle one frame outside a transaction. Returns `true` when a
/// transaction thread was spawned and now owns the session's in-flight
/// slot.
fn handle_autocommit(shared: &Arc<Shared>, job: &Job) -> bool {
    let sess = &job.sess;
    let req = match Request::decode(&job.body) {
        Ok(req) => req,
        Err(e) => {
            shared.stats.proto_errors.fetch_add(1, Ordering::Relaxed);
            sess.reply_error(ErrorCode::Protocol, e.to_string());
            sess.kill.store(true, Ordering::Release);
            return false;
        }
    };

    // Handshake gate.
    if !sess.state.lock().hello {
        let Request::Hello { proto, token } = &req else {
            shared.stats.proto_errors.fetch_add(1, Ordering::Relaxed);
            sess.reply_error(ErrorCode::Protocol, "handshake required before requests");
            sess.kill.store(true, Ordering::Release);
            return false;
        };
        if *proto != PROTO_VERSION {
            sess.reply_error(
                ErrorCode::Auth,
                format!("unsupported protocol version {proto}"),
            );
            sess.kill.store(true, Ordering::Release);
            return false;
        }
        if *token != shared.cfg.auth_token {
            sess.reply_error(ErrorCode::Auth, "bad token");
            sess.kill.store(true, Ordering::Release);
            return false;
        }
        sess.state.lock().hello = true;
        sess.reply(&Response::HelloOk { session: sess.id });
        return false;
    }

    match req {
        Request::Hello { .. } => {
            sess.reply_error(ErrorCode::Protocol, "duplicate handshake");
            sess.kill.store(true, Ordering::Release);
            false
        }
        Request::Ping => {
            sess.reply(&Response::Ok { stmts: 0 });
            false
        }
        Request::Close => {
            sess.reply(&Response::Ok { stmts: 0 });
            sess.kill.store(true, Ordering::Release);
            false
        }
        Request::Prepare { sql } => {
            match shared.engine.database().prepare(&sql) {
                Ok(()) => {
                    let mut st = sess.state.lock();
                    let id = st.next_stmt;
                    st.next_stmt += 1;
                    st.stmts.insert(id, sql);
                    drop(st);
                    sess.reply(&Response::PrepareOk { stmt: id });
                }
                Err(e) => sess.reply(&Response::from_rel_error(&e)),
            }
            false
        }
        Request::Begin => begin_txn(shared, sess),
        Request::Commit | Request::Rollback => {
            sess.reply_error(ErrorCode::Invalid, "no open transaction");
            false
        }
        Request::QuerySql { sql, params } => match classify(&sql) {
            SqlClass::Begin => begin_txn(shared, sess),
            SqlClass::Commit | SqlClass::Rollback => {
                sess.reply_error(ErrorCode::Invalid, "no open transaction");
                false
            }
            SqlClass::Other(text) => {
                run_sql_autocommit(shared, sess, text, &params);
                false
            }
        },
        Request::Execute { stmt, params } => {
            let sql = sess.state.lock().stmts.get(&stmt).cloned();
            match sql {
                Some(text) => run_sql_autocommit(shared, sess, &text, &params),
                None => sess.reply_error(
                    ErrorCode::Invalid,
                    format!("unknown prepared statement {stmt}"),
                ),
            }
            false
        }
        Request::QueryGremlin { gremlin } => {
            match shared.engine.query(&gremlin) {
                Ok(rel) => sess.reply(&Response::ResultSet { stmts: 1, rel }),
                Err(e) => sess.reply(&Response::from_core_error(&e)),
            }
            false
        }
    }
}

fn run_sql_autocommit(shared: &Arc<Shared>, sess: &Arc<Sess>, sql: &str, params: &[Value]) {
    match shared.engine.database().execute_with_params(sql, params) {
        Ok(rel) => sess.reply(&Response::ResultSet { stmts: 1, rel }),
        Err(e) => sess.reply(&Response::from_rel_error(&e)),
    }
}

// ---------------------------------------------------------------------
// Transaction threads
// ---------------------------------------------------------------------

/// Reserve a transaction slot and move the session onto a dedicated
/// thread. The worker's in-flight slot transfers to the new thread, which
/// replies to the `BEGIN` once the store transaction is acquired.
fn begin_txn(shared: &Arc<Shared>, sess: &Arc<Sess>) -> bool {
    {
        let st = sess.state.lock();
        if st.txn.is_some() {
            drop(st);
            sess.reply_error(ErrorCode::Invalid, "transaction already open");
            return false;
        }
    }
    let slots = &shared.stats.open_txns;
    if slots.fetch_add(1, Ordering::AcqRel) >= shared.cfg.max_txn_sessions {
        slots.fetch_sub(1, Ordering::AcqRel);
        sess.reply_error(
            ErrorCode::Busy,
            format!(
                "open-transaction limit ({}) reached",
                shared.cfg.max_txn_sessions
            ),
        );
        return false;
    }
    let (tx, rx) = mpsc::channel::<TxnMsg>();
    sess.state.lock().txn = Some(tx);
    let shared2 = Arc::clone(shared);
    let sess2 = Arc::clone(sess);
    let spawned = std::thread::Builder::new()
        .name("sqlgraph-txn".into())
        .spawn(move || txn_thread(&shared2, &sess2, rx))
        .is_ok();
    if !spawned {
        sess.state.lock().txn = None;
        slots.fetch_sub(1, Ordering::AcqRel);
        sess.reply_error(ErrorCode::Busy, "could not spawn transaction thread");
        return false;
    }
    true
}

/// Clears the session's transaction registration on every exit path,
/// including panics (the `GraphTxn` itself rolls back via its own Drop).
struct TxnGuard<'a> {
    shared: &'a Shared,
    sess: &'a Sess,
}

impl Drop for TxnGuard<'_> {
    fn drop(&mut self) {
        self.sess.state.lock().txn = None;
        self.shared.stats.open_txns.fetch_sub(1, Ordering::AcqRel);
        self.sess.in_flight.store(false, Ordering::Release);
    }
}

fn txn_thread(shared: &Arc<Shared>, sess: &Arc<Sess>, rx: mpsc::Receiver<TxnMsg>) {
    let guard = TxnGuard { shared, sess };
    let outcome = catch_unwind(AssertUnwindSafe(|| txn_session(shared, sess, &rx)));
    if outcome.is_err() {
        shared.stats.panics.fetch_add(1, Ordering::Relaxed);
        sess.reply_error(ErrorCode::Internal, "transaction handler panicked");
        sess.kill.store(true, Ordering::Release);
    }
    drop(guard);
}

fn txn_session(shared: &Arc<Shared>, sess: &Arc<Sess>, rx: &mpsc::Receiver<TxnMsg>) {
    // Acquire the store transaction, polling so shutdown can interrupt.
    let deadline = Instant::now() + shared.cfg.txn_acquire_timeout;
    let mut txn: GraphTxn<'_> = loop {
        if shared.shutdown.load(Ordering::Acquire) {
            sess.reply_error(ErrorCode::ShuttingDown, "server shutting down");
            sess.kill.store(true, Ordering::Release);
            return;
        }
        if let Some(t) = shared.engine.try_transaction() {
            break t;
        }
        if Instant::now() > deadline {
            sess.reply_error(
                ErrorCode::Busy,
                "timed out waiting for the store transaction",
            );
            return;
        }
        std::thread::sleep(Duration::from_micros(200));
    };
    sess.reply(&Response::Ok { stmts: 0 });
    sess.in_flight.store(false, Ordering::Release);

    loop {
        match rx.recv_timeout(shared.cfg.txn_idle_timeout) {
            Ok(TxnMsg::Frame(body)) => {
                match txn_frame(shared, sess, txn, &body) {
                    Some(t) => {
                        txn = t;
                        sess.in_flight.store(false, Ordering::Release);
                    }
                    None => return, // committed / rolled back / fatal
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Stalled client holding the mutation lock: roll back and
                // kick the connection.
                txn.rollback();
                sess.reply_error(ErrorCode::Timeout, "transaction idle timeout; rolled back");
                sess.kill.store(true, Ordering::Release);
                return;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Connection closed or server draining: roll back.
                txn.rollback();
                return;
            }
        }
    }
}

/// Handle one frame inside a transaction. Returns the transaction if it
/// stays open, `None` if it ended (the guard in `txn_thread` clears the
/// session registration; `in_flight` is cleared here on the ended paths).
fn txn_frame<'g>(
    shared: &Shared,
    sess: &Sess,
    txn: GraphTxn<'g>,
    body: &[u8],
) -> Option<GraphTxn<'g>> {
    let req = match Request::decode(body) {
        Ok(req) => req,
        Err(e) => {
            shared.stats.proto_errors.fetch_add(1, Ordering::Relaxed);
            txn.rollback();
            sess.reply_error(ErrorCode::Protocol, e.to_string());
            sess.kill.store(true, Ordering::Release);
            return None;
        }
    };
    match req {
        Request::Hello { .. } => {
            txn.rollback();
            sess.reply_error(ErrorCode::Protocol, "duplicate handshake");
            sess.kill.store(true, Ordering::Release);
            None
        }
        Request::Ping => {
            let stmts = txn.statements_executed();
            sess.reply(&Response::Ok { stmts });
            Some(txn)
        }
        Request::Close => {
            txn.rollback();
            sess.reply(&Response::Ok { stmts: 0 });
            sess.kill.store(true, Ordering::Release);
            None
        }
        Request::Begin => {
            sess.reply_error(ErrorCode::Invalid, "transaction already open");
            Some(txn)
        }
        Request::Commit => {
            let stmts = txn.statements_executed();
            match txn.commit() {
                Ok(()) => sess.reply(&Response::Ok { stmts }),
                Err(e) => sess.reply(&Response::from_core_error(&e)),
            }
            None
        }
        Request::Rollback => {
            let stmts = txn.statements_executed();
            txn.rollback();
            sess.reply(&Response::Ok { stmts });
            None
        }
        Request::Prepare { sql } => {
            match shared.engine.database().prepare(&sql) {
                Ok(()) => {
                    let mut st = sess.state.lock();
                    let id = st.next_stmt;
                    st.next_stmt += 1;
                    st.stmts.insert(id, sql);
                    drop(st);
                    sess.reply(&Response::PrepareOk { stmt: id });
                }
                Err(e) => sess.reply(&Response::from_rel_error(&e)),
            }
            Some(txn)
        }
        Request::QuerySql { sql, params } => match classify(&sql) {
            SqlClass::Begin => {
                sess.reply_error(ErrorCode::Invalid, "transaction already open");
                Some(txn)
            }
            SqlClass::Commit => {
                let stmts = txn.statements_executed();
                match txn.commit() {
                    Ok(()) => sess.reply(&Response::Ok { stmts }),
                    Err(e) => sess.reply(&Response::from_core_error(&e)),
                }
                None
            }
            SqlClass::Rollback => {
                let stmts = txn.statements_executed();
                txn.rollback();
                sess.reply(&Response::Ok { stmts });
                None
            }
            SqlClass::Other(text) => txn_statement(sess, txn, |t| t.sql_with_params(text, &params)),
        },
        Request::Execute { stmt, params } => {
            let sql = sess.state.lock().stmts.get(&stmt).cloned();
            match sql {
                Some(text) => txn_statement(sess, txn, |t| t.sql_with_params(&text, &params)),
                None => {
                    sess.reply_error(
                        ErrorCode::Invalid,
                        format!("unknown prepared statement {stmt}"),
                    );
                    Some(txn)
                }
            }
        }
        Request::QueryGremlin { gremlin } => txn_statement(sess, txn, |t| t.query(&gremlin)),
    }
}

/// Run one statement inside the transaction. Recoverable errors (bad SQL,
/// missing vertex, …) leave the transaction open, matching in-process
/// `GraphTxn` semantics; a first-updater-wins conflict aborts it — the
/// snapshot can no longer commit, so the server rolls back and the client
/// retries from `BEGIN`.
fn txn_statement<'g>(
    sess: &Sess,
    mut txn: GraphTxn<'g>,
    f: impl FnOnce(&mut GraphTxn<'g>) -> Result<Relation, CoreError>,
) -> Option<GraphTxn<'g>> {
    match f(&mut txn) {
        Ok(rel) => {
            let stmts = txn.statements_executed();
            sess.reply(&Response::ResultSet { stmts, rel });
            Some(txn)
        }
        Err(e) => {
            let fatal = matches!(
                &e,
                CoreError::Rel(
                    sqlgraph_rel::Error::TxnConflict(_)
                        | sqlgraph_rel::Error::RolledBack(_)
                        | sqlgraph_rel::Error::Wal(_)
                )
            );
            sess.reply(&Response::from_core_error(&e));
            if fatal {
                txn.rollback();
                None
            } else {
                Some(txn)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Non-blocking write helper
// ---------------------------------------------------------------------

/// `write_frame` over a non-blocking socket: spin out `WouldBlock` with
/// short sleeps until `timeout`.
fn write_frame_nb(sock: &mut TcpStream, body: &[u8], timeout: Duration) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    let deadline = Instant::now() + timeout;
    let mut off = 0;
    while off < frame.len() {
        match sock.write(&frame[off..]) {
            Ok(0) => return Err(std::io::Error::new(ErrorKind::WriteZero, "socket closed")),
            Ok(n) => off += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(std::io::Error::new(ErrorKind::TimedOut, "write timed out"));
                }
                std::thread::sleep(Duration::from_micros(50));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
