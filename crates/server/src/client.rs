//! Blocking client for the SQLGraph wire protocol.
//!
//! One [`Client`] wraps one TCP connection and one server-side session.
//! The API mirrors the in-process surface: autocommit queries, prepared
//! statements, and explicit transactions driven by `begin`/`commit`/
//! `rollback`. Server-side failures come back as
//! [`ClientError::Server`]; for error codes 1–8 the original
//! [`sqlgraph_rel::Error`] can be reconstructed with
//! [`ClientError::as_rel_error`], which is what the differential tests
//! use to compare remote against in-process execution.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, MAX_FRAME_DEFAULT, PROTO_VERSION,
};
use sqlgraph_rel::{Relation, Value};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure: transport, server-reported, or protocol breakage.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connection refused, reset, timeout).
    Io(std::io::Error),
    /// The server replied with a typed error frame.
    Server {
        code: ErrorCode,
        aux: u32,
        message: String,
    },
    /// The server replied with something the client cannot interpret.
    Protocol(String),
}

impl ClientError {
    /// Reconstruct the engine error for server codes 1–8, `None` for
    /// store/server-level codes.
    pub fn as_rel_error(&self) -> Option<sqlgraph_rel::Error> {
        match self {
            ClientError::Server { code, aux, message } => {
                sqlgraph_rel::Error::from_wire(*code as u8, *aux, message)
            }
            _ => None,
        }
    }

    /// The server-reported error code, if this is a server error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, ClientError>;

/// A query result: the relation plus the session's cumulative
/// statement-execution count (used by the parity tests to check that
/// remote accounting matches in-process `Txn::statements_executed`).
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub rel: Relation,
    pub stmts: u64,
}

/// Blocking connection to a `sqlgraph-server`.
pub struct Client {
    sock: TcpStream,
    session: u64,
    max_frame: usize,
    /// Statement count reported by the most recent response.
    last_stmts: u64,
    /// True while an explicit transaction is open client-side.
    in_txn: bool,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("session", &self.session)
            .field("in_txn", &self.in_txn)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connect with an empty auth token.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with(addr, "")
    }

    /// Connect and handshake with `token`.
    pub fn connect_with(addr: impl ToSocketAddrs, token: &str) -> Result<Client> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true).ok();
        sock.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut client = Client {
            sock,
            session: 0,
            max_frame: MAX_FRAME_DEFAULT,
            last_stmts: 0,
            in_txn: false,
        };
        match client.roundtrip(&Request::Hello {
            proto: PROTO_VERSION,
            token: token.to_string(),
        })? {
            Response::HelloOk { session } => {
                client.session = session;
                Ok(client)
            }
            other => Err(unexpected(&other)),
        }
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Statement count from the most recent response: cumulative within
    /// an open transaction, `1` per autocommit statement.
    pub fn statements_executed(&self) -> u64 {
        self.last_stmts
    }

    /// True while `begin` has succeeded and no commit/rollback has ended
    /// the transaction (server-side aborts also clear it).
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// Run one SQL statement (autocommit outside a transaction).
    pub fn query_sql(&mut self, sql: &str) -> Result<Relation> {
        self.query_sql_with_params(sql, &[])
    }

    /// Run one parameterized SQL statement.
    pub fn query_sql_with_params(&mut self, sql: &str, params: &[Value]) -> Result<Relation> {
        let resp = self.roundtrip(&Request::QuerySql {
            sql: sql.to_string(),
            params: params.to_vec(),
        })?;
        self.result_set(resp)
    }

    /// Run one Gremlin traversal or CRUD statement.
    pub fn query_gremlin(&mut self, gremlin: &str) -> Result<Relation> {
        let resp = self.roundtrip(&Request::QueryGremlin {
            gremlin: gremlin.to_string(),
        })?;
        self.result_set(resp)
    }

    /// Register `sql` as a prepared statement; returns its handle.
    pub fn prepare(&mut self, sql: &str) -> Result<u32> {
        match self.roundtrip(&Request::Prepare {
            sql: sql.to_string(),
        })? {
            Response::PrepareOk { stmt } => Ok(stmt),
            other => Err(unexpected(&other)),
        }
    }

    /// Execute a prepared statement.
    pub fn execute(&mut self, stmt: u32, params: &[Value]) -> Result<Relation> {
        let resp = self.roundtrip(&Request::Execute {
            stmt,
            params: params.to_vec(),
        })?;
        self.result_set(resp)
    }

    /// Open an explicit transaction. Until `commit`/`rollback`, every
    /// statement on this connection runs inside it.
    pub fn begin(&mut self) -> Result<()> {
        match self.roundtrip(&Request::Begin)? {
            Response::Ok { stmts } => {
                self.last_stmts = stmts;
                self.in_txn = true;
                Ok(())
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Commit the open transaction.
    pub fn commit(&mut self) -> Result<u64> {
        self.in_txn = false;
        match self.roundtrip(&Request::Commit)? {
            Response::Ok { stmts } => {
                self.last_stmts = stmts;
                Ok(stmts)
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Roll back the open transaction.
    pub fn rollback(&mut self) -> Result<u64> {
        self.in_txn = false;
        match self.roundtrip(&Request::Rollback)? {
            Response::Ok { stmts } => {
                self.last_stmts = stmts;
                Ok(stmts)
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe; returns the session's current statement count.
    pub fn ping(&mut self) -> Result<u64> {
        match self.roundtrip(&Request::Ping)? {
            Response::Ok { stmts } => Ok(stmts),
            other => Err(unexpected(&other)),
        }
    }

    /// Polite goodbye; the server acknowledges then closes the session.
    pub fn close(mut self) -> Result<()> {
        match self.roundtrip(&Request::Close)? {
            Response::Ok { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn result_set(&mut self, resp: Response) -> Result<Relation> {
        match resp {
            Response::ResultSet { stmts, rel } => {
                self.last_stmts = stmts;
                Ok(rel)
            }
            Response::Ok { stmts } => {
                // Transaction-control SQL text ("COMMIT" via query_sql).
                self.last_stmts = stmts;
                self.in_txn = false;
                Ok(Relation::new(Vec::new(), Vec::new()))
            }
            other => Err(unexpected(&other)),
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.sock, &req.encode())?;
        let body = read_frame(&mut self.sock, self.max_frame)?;
        let resp = Response::decode(&body).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if let Response::Error { code, aux, message } = resp {
            // Transaction-fatal errors end the server-side transaction.
            if matches!(
                code,
                ErrorCode::TxnConflict
                    | ErrorCode::RolledBack
                    | ErrorCode::Wal
                    | ErrorCode::Timeout
                    | ErrorCode::ShuttingDown
            ) {
                self.in_txn = false;
            }
            return Err(ClientError::Server { code, aux, message });
        }
        Ok(resp)
    }
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::Protocol(format!("unexpected response frame: {resp:?}"))
}
