//! # sqlgraph-server — framed TCP front end for the SQLGraph store
//!
//! SQLGraph's engine (`sqlgraph-core` over `sqlgraph-rel`) is an
//! embedded library; this crate puts a wire protocol in front of it so
//! many client processes can share one store, and so the benchmark
//! harness measures *real* network round trips instead of simulated
//! ones.
//!
//! * [`protocol`] — the length-prefixed frame grammar: requests
//!   (handshake, SQL/Gremlin queries, prepared statements,
//!   begin/commit/rollback) and typed responses (result sets with a
//!   binary value codec, structured error frames).
//! * [`Server`] — accept thread + non-blocking dispatcher + bounded
//!   worker pool; sessions with open transactions move to dedicated
//!   threads so a transaction parked on the store's mutation lock can
//!   never starve the pool that must serve its `COMMIT`.
//! * [`Client`] — a blocking connection used by tests and the
//!   `repro -- conn-sweep` / `throughput-mixed` drivers.
//!
//! The protocol is deliberately minimal (no TLS, a shared-token auth
//! stub) — the point is protocol *shape* and connection scalability, not
//! production hardening.

mod client;
pub mod protocol;
mod server;

pub use client::{Client, ClientError, QueryResult};
pub use protocol::{ErrorCode, Request, Response, MAX_FRAME_DEFAULT, PROTO_VERSION};
pub use server::{Server, ServerConfig};

#[cfg(test)]
mod sync_assertions {
    use super::*;
    const fn assert_send_sync<T: Send + Sync>() {}
    #[allow(dead_code)]
    const _: () = {
        assert_send_sync::<Server>();
        assert_send_sync::<ServerConfig>();
    };
    #[allow(dead_code)]
    const fn assert_send<T: Send>() {}
    #[allow(dead_code)]
    const _: () = assert_send::<Client>();
}
