//! `SqlGraph`: the property graph store.
//!
//! Holds the six-table hybrid schema inside an embedded relational
//! database. Reads go through the Gremlin→SQL translator (one statement per
//! traversal); the paper's graph update operations run as transactions
//! spanning the adjacency, attribute, and edge tables — the stored
//! procedures of §4.5.2, including the negative-ID vertex deletion
//! optimization and its offline [`SqlGraph::vacuum`] counterpart.

use crate::layout::{color_labels, GraphLayout, LayoutStats};
use crate::schema::{create_tables, deleted_id, SchemaConfig, MV_BASE};
use crate::translate::{translate, translate_with, TranslateOptions};
use crate::CoreError;
use parking_lot::{RwLock, RwLockWriteGuard};
use sqlgraph_gremlin::ast::GremlinStatement;
use sqlgraph_gremlin::blueprints::{
    Blueprints, Direction, GraphError, GraphResult, GraphTransaction,
};
use sqlgraph_gremlin::{interp, parse};
use sqlgraph_json::{Json, JsonObject};
use sqlgraph_rel::{Database, Relation, TsOracle, Txn, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Per-vertex adjacency grouped by label: vid → label → [(eid, other)].
type AdjacencyMap<'a> = BTreeMap<i64, BTreeMap<&'a str, Vec<(i64, i64)>>>;

/// How many times an autocommit graph mutation is retried when it loses a
/// first-updater-wins conflict against a concurrent writer. Graph CRUD
/// touches disjoint rows in the common case, so a handful of retries
/// absorbs transient hot-row collisions (e.g. two edges migrating the same
/// adjacency triad single→multi).
const TXN_RETRIES: usize = 16;

/// One vertex for bulk loading: `(vertex id, properties)`.
pub type VertexSpec = (i64, Vec<(String, Json)>);
/// One edge for bulk loading: `(edge id, source, target, label, properties)`.
pub type EdgeSpec = (i64, i64, i64, String, Vec<(String, Json)>);

/// Bulk-load input: a complete property graph.
#[derive(Debug, Clone, Default)]
pub struct GraphData {
    /// Vertices — ids must be unique and non-negative.
    pub vertices: Vec<VertexSpec>,
    /// Edges.
    pub edges: Vec<EdgeSpec>,
}

/// The SQLGraph property graph store.
pub struct SqlGraph {
    db: Database,
    config: SchemaConfig,
    layout: RwLock<GraphLayout>,
    /// Vertex deletion must not interleave with other mutations: a
    /// concurrent `add_edge` could slip an edge past the incident-edge
    /// collection and leave a dangling reference. Deletion takes this lock
    /// exclusively; every other mutation takes it shared.
    mutation_lock: RwLock<()>,
    next_vid: AtomicI64,
    next_eid: AtomicI64,
    next_valid: AtomicI64,
    next_rowno: AtomicI64,
    /// Queries that fell back to the interpreter (the stored-procedure
    /// fallback path of §4.4).
    fallbacks: AtomicU64,
    /// Stats captured at bulk-load time (Table 3).
    load_stats: RwLock<Option<(LayoutStats, LayoutStats)>>,
}

impl std::fmt::Debug for SqlGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SqlGraph")
            .field("config", &self.config)
            .field("vertices", &self.db.table_len("va").unwrap_or(0))
            .field("edges", &self.db.table_len("ea").unwrap_or(0))
            .finish()
    }
}

impl SqlGraph {
    /// A fresh in-memory store with the default layout.
    pub fn new_in_memory() -> SqlGraph {
        SqlGraph::with_config(SchemaConfig::default()).expect("default schema is valid")
    }

    /// A fresh in-memory store with explicit bucket counts.
    pub fn with_config(config: SchemaConfig) -> Result<SqlGraph, CoreError> {
        let db = Database::new();
        create_tables(&db, &config)?;
        Ok(SqlGraph::from_db(db, config))
    }

    /// [`SqlGraph::with_config`] whose commit timestamps come from a shared
    /// oracle. Used by [`crate::shard::ShardedGraph`] so all shards draw
    /// from one monotone clock (the cross-shard atomic-commit requirement).
    pub fn with_config_oracle(
        config: SchemaConfig,
        oracle: Arc<TsOracle>,
    ) -> Result<SqlGraph, CoreError> {
        let db = Database::new_with_oracle(oracle);
        create_tables(&db, &config)?;
        Ok(SqlGraph::from_db(db, config))
    }

    /// Open (or create) a WAL-backed store at `wal_path`. Existing data is
    /// recovered by replay; id counters resume past the recovered maxima.
    pub fn open(wal_path: impl AsRef<Path>, config: SchemaConfig) -> Result<SqlGraph, CoreError> {
        SqlGraph::from_recovered(Database::open(wal_path)?, config)
    }

    /// [`SqlGraph::open`] over an explicit file-system layer, for
    /// deterministic crash testing with [`sqlgraph_rel::SimFs`].
    pub fn open_with_vfs(
        wal_path: impl AsRef<Path>,
        config: SchemaConfig,
        vfs: std::sync::Arc<dyn sqlgraph_rel::Vfs>,
    ) -> Result<SqlGraph, CoreError> {
        SqlGraph::from_recovered(Database::open_with_vfs(wal_path, vfs)?, config)
    }

    /// [`SqlGraph::open_with_vfs`] with a shared commit-timestamp oracle.
    pub fn open_with_vfs_oracle(
        wal_path: impl AsRef<Path>,
        config: SchemaConfig,
        vfs: std::sync::Arc<dyn sqlgraph_rel::Vfs>,
        oracle: Arc<TsOracle>,
    ) -> Result<SqlGraph, CoreError> {
        SqlGraph::from_recovered(
            Database::open_with_vfs_oracle(wal_path, vfs, oracle)?,
            config,
        )
    }

    fn from_recovered(db: Database, config: SchemaConfig) -> Result<SqlGraph, CoreError> {
        if !db.table_names().contains(&"va".to_string()) {
            create_tables(&db, &config)?;
        }
        let store = SqlGraph::from_db(db, config);
        store.resync_counters()?;
        Ok(store)
    }

    /// Snapshot the full graph state and rotate the WAL, bounding the next
    /// open to the snapshot plus the post-checkpoint tail. Graph mutations
    /// are excluded while the snapshot is cut.
    pub fn checkpoint(&self) -> Result<sqlgraph_rel::CheckpointReport, CoreError> {
        let _exclusive = self.mutation_lock.write();
        Ok(self.db.checkpoint()?)
    }

    /// Fsync the WAL on every commit (off by default for benchmarks).
    pub fn set_sync_on_commit(&self, sync: bool) {
        self.db.set_sync_on_commit(sync);
    }

    /// What recovery found when this store was opened from a log.
    pub fn recovery_report(&self) -> Option<&sqlgraph_rel::RecoveryReport> {
        self.db.recovery_report()
    }

    fn from_db(db: Database, config: SchemaConfig) -> SqlGraph {
        SqlGraph {
            db,
            config,
            layout: RwLock::new(GraphLayout::trivial(config.out_buckets, config.in_buckets)),
            mutation_lock: RwLock::new(()),
            next_vid: AtomicI64::new(1),
            next_eid: AtomicI64::new(1),
            next_valid: AtomicI64::new(1),
            next_rowno: AtomicI64::new(1),
            fallbacks: AtomicU64::new(0),
            load_stats: RwLock::new(None),
        }
    }

    fn resync_counters(&self) -> Result<(), CoreError> {
        let max_of = |sql: &str| -> Result<i64, CoreError> {
            Ok(self
                .db
                .execute(sql)?
                .scalar()
                .and_then(Value::as_int)
                .unwrap_or(0))
        };
        // ABS folds the negative deleted markers back into the live range.
        let max_live = max_of("SELECT MAX(vid) FROM va")?;
        let max_deleted = max_of("SELECT MAX(ABS(vid + 1)) FROM va WHERE vid < 0")?;
        self.next_vid
            .store(max_live.max(max_deleted) + 1, Ordering::SeqCst);
        self.next_eid
            .store(max_of("SELECT MAX(eid) FROM ea")? + 1, Ordering::SeqCst);
        let max_valid =
            max_of("SELECT MAX(valid) FROM osa")?.max(max_of("SELECT MAX(valid) FROM isa")?);
        self.next_valid
            .store((max_valid - MV_BASE).max(0) + 1, Ordering::SeqCst);
        let max_rowno =
            max_of("SELECT MAX(rowno) FROM opa")?.max(max_of("SELECT MAX(rowno) FROM ipa")?);
        self.next_rowno.store(max_rowno + 1, Ordering::SeqCst);
        Ok(())
    }

    /// The underlying relational database (inspection, ad-hoc SQL).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The current physical layout.
    pub fn layout(&self) -> GraphLayout {
        self.layout.read().clone()
    }

    /// Number of queries that used the interpreter fallback.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Layout statistics from the last bulk load (out, in) — Table 3.
    pub fn load_stats(&self) -> Option<(LayoutStats, LayoutStats)> {
        self.load_stats.read().clone()
    }

    // ------------------------------------------------------------------
    // Bulk load
    // ------------------------------------------------------------------

    /// Bulk-load a complete graph: computes the coloring layout from the
    /// data (§3.2), then writes all six tables directly.
    ///
    /// Bulk loading bypasses the WAL (standard bulk-import semantics); use
    /// it on a fresh store.
    pub fn bulk_load(&self, data: &GraphData) -> Result<(), CoreError> {
        let layout = layout_for(&self.config, [data]);
        self.bulk_load_with_layout(data, &layout, None)
    }

    /// [`SqlGraph::bulk_load`] with a pre-computed layout, optionally
    /// restricted to one hash partition.
    ///
    /// `part = Some((n, me))` loads only this shard's slice of `data`:
    /// vertex rows whose vid hashes to `me` under [`crate::shard::shard_of`],
    /// EA rows owned by their *source* vertex, out-adjacency for owned
    /// sources, and in-adjacency for owned targets. The layout must be
    /// computed from the full graph (via [`layout_for`]) so every shard
    /// colors labels identically.
    pub(crate) fn bulk_load_with_layout(
        &self,
        data: &GraphData,
        layout: &GraphLayout,
        part: Option<(usize, usize)>,
    ) -> Result<(), CoreError> {
        let owns = |vid: i64| match part {
            None => true,
            Some((n, me)) => crate::shard::shard_of(vid, n) == me,
        };
        // 1. This partition's adjacency, grouped by vertex and label.
        let mut out_adj: AdjacencyMap<'_> = AdjacencyMap::new();
        let mut in_adj: AdjacencyMap<'_> = AdjacencyMap::new();
        for (eid, src, dst, label, _) in &data.edges {
            if owns(*src) {
                out_adj
                    .entry(*src)
                    .or_default()
                    .entry(label)
                    .or_default()
                    .push((*eid, *dst));
            }
            if owns(*dst) {
                in_adj
                    .entry(*dst)
                    .or_default()
                    .entry(label)
                    .or_default()
                    .push((*eid, *src));
            }
        }

        // 2. Write VA.
        {
            let mut va = self.db.write_table("va")?;
            for (vid, props) in &data.vertices {
                if owns(*vid) {
                    va.insert(vec![Value::Int(*vid), Value::json(props_to_json(props))])?;
                }
            }
        }
        // 3. Write EA (placed on the source vertex's partition).
        {
            let mut ea = self.db.write_table("ea")?;
            for (eid, src, dst, label, props) in &data.edges {
                if owns(*src) {
                    ea.insert(vec![
                        Value::Int(*eid),
                        Value::Int(*src),
                        Value::Int(*dst),
                        Value::str(label),
                        Value::json(props_to_json(props)),
                    ])?;
                }
            }
        }
        // 4. Shred adjacency, collecting Table 3 stats.
        let mut stats_out = LayoutStats {
            hashed_labels: layout.out.labels(),
            max_bucket_size: layout.out.bucket_sizes().into_iter().max().unwrap_or(0),
            ..LayoutStats::default()
        };
        let mut stats_in = LayoutStats {
            hashed_labels: layout.incoming.labels(),
            max_bucket_size: layout
                .incoming
                .bucket_sizes()
                .into_iter()
                .max()
                .unwrap_or(0),
            ..LayoutStats::default()
        };
        self.shred_direction(layout, &out_adj, true, data.vertices.len(), &mut stats_out)?;
        self.shred_direction(layout, &in_adj, false, data.vertices.len(), &mut stats_in)?;

        // 5. Counters (from the full graph, so shard loads agree) and layout.
        let max_vid = data.vertices.iter().map(|(v, _)| *v).max().unwrap_or(0);
        let max_eid = data.edges.iter().map(|(e, ..)| *e).max().unwrap_or(0);
        self.next_vid.fetch_max(max_vid + 1, Ordering::SeqCst);
        self.next_eid.fetch_max(max_eid + 1, Ordering::SeqCst);
        *self.layout.write() = layout.clone();
        *self.load_stats.write() = Some((stats_out, stats_in));
        Ok(())
    }

    fn shred_direction(
        &self,
        layout: &GraphLayout,
        adj: &AdjacencyMap<'_>,
        out: bool,
        total_vertices: usize,
        stats: &mut LayoutStats,
    ) -> Result<(), CoreError> {
        let buckets = if out {
            self.config.out_buckets
        } else {
            self.config.in_buckets
        };
        let (pa, sa) = if out { ("opa", "osa") } else { ("ipa", "isa") };
        let arity = 3 + 3 * buckets;
        let mut pa_table = self.db.write_table(pa)?;
        let mut sa_table = self.db.write_table(sa)?;
        let empty_row = |rowno: i64, vid: i64, spill: bool| {
            let mut row = vec![Value::Null; arity];
            row[0] = Value::Int(rowno);
            row[1] = Value::Int(vid);
            row[2] = Value::Int(spill as i64);
            row
        };
        for (&vid, labels) in adj {
            let mut rows: Vec<Vec<Value>> = vec![empty_row(
                self.next_rowno.fetch_add(1, Ordering::Relaxed),
                vid,
                false,
            )];
            for (label, entries) in labels {
                let col = if out {
                    layout.out_column(label)
                } else {
                    layout.in_column(label)
                };
                let (lbl_i, eid_i, val_i) = (3 + 3 * col, 4 + 3 * col, 5 + 3 * col);
                // First row whose triad is free; else a new spill row.
                let row_idx = match rows.iter().position(|r| r[lbl_i].is_null()) {
                    Some(i) => i,
                    None => {
                        rows.push(empty_row(
                            self.next_rowno.fetch_add(1, Ordering::Relaxed),
                            vid,
                            true,
                        ));
                        rows.len() - 1
                    }
                };
                let row = &mut rows[row_idx];
                row[lbl_i] = Value::str(*label);
                if entries.len() == 1 {
                    row[eid_i] = Value::Int(entries[0].0);
                    row[val_i] = Value::Int(entries[0].1);
                } else {
                    let valid = MV_BASE + self.next_valid.fetch_add(1, Ordering::Relaxed);
                    row[val_i] = Value::Int(valid);
                    for (eid, other) in entries {
                        sa_table.insert(vec![
                            Value::Int(valid),
                            Value::Int(*eid),
                            Value::Int(*other),
                        ])?;
                        stats.multi_value_rows += 1;
                    }
                }
            }
            stats.primary_rows += 1;
            stats.spill_rows += rows.len() - 1;
            for row in rows {
                pa_table.insert(row)?;
            }
        }
        // Vertices with no adjacency in this direction get their primary
        // row lazily from attach(); nothing to write for them here.
        let _ = total_vertices;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Execute a Gremlin statement. Side-effect-free traversals compile to
    /// a single SQL statement; non-translatable queries fall back to the
    /// step-at-a-time interpreter; CRUD statements run as transactions.
    pub fn query(&self, gremlin: &str) -> Result<Relation, CoreError> {
        let stmt = parse(gremlin)?;
        match &stmt {
            GremlinStatement::Query(pipeline) => {
                let layout = self.layout.read().clone();
                match translate(pipeline, &layout) {
                    Ok(sql) => Ok(self.db.execute(&sql)?),
                    Err(_) => {
                        self.fallbacks.fetch_add(1, Ordering::Relaxed);
                        let elems = interp::eval(self, pipeline)?;
                        Ok(elems_to_relation(elems))
                    }
                }
            }
            GremlinStatement::AddVertex { props } => {
                let id = self.add_vertex_props(props)?;
                Ok(Relation::new(
                    vec!["val".into()],
                    vec![vec![Value::Int(id)]],
                ))
            }
            GremlinStatement::AddEdge {
                src,
                dst,
                label,
                props,
            } => {
                let id = self.add_edge_props(*src, *dst, label, props)?;
                Ok(Relation::new(
                    vec!["val".into()],
                    vec![vec![Value::Int(id)]],
                ))
            }
            GremlinStatement::RemoveVertex { id } => {
                self.remove_vertex_impl(*id)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
            GremlinStatement::RemoveEdge { id } => {
                self.remove_edge_impl(*id)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
            GremlinStatement::SetVertexProperty { id, key, value } => {
                self.set_vertex_property_impl(*id, key, value)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
            GremlinStatement::SetEdgeProperty { id, key, value } => {
                self.set_edge_property_impl(*id, key, value)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
        }
    }

    /// The SQL a Gremlin traversal compiles to (for inspection/tests).
    pub fn translate_query(&self, gremlin: &str) -> Result<String, CoreError> {
        self.translate_query_with(gremlin, TranslateOptions::default())
    }

    /// Translate with explicit physical-strategy options (Table 4 /
    /// Figure 6 ablations).
    pub fn translate_query_with(
        &self,
        gremlin: &str,
        options: TranslateOptions,
    ) -> Result<String, CoreError> {
        match parse(gremlin)? {
            GremlinStatement::Query(pipeline) => {
                let layout = self.layout.read().clone();
                translate_with(&pipeline, &layout, options)
                    .map_err(|u| CoreError::Unsupported(u.reason))
            }
            _ => Err(CoreError::Unsupported("not a traversal query".into())),
        }
    }

    /// Execute a traversal with explicit physical-strategy options.
    pub fn query_with(
        &self,
        gremlin: &str,
        options: TranslateOptions,
    ) -> Result<Relation, CoreError> {
        let sql = self.translate_query_with(gremlin, options)?;
        Ok(self.db.execute(&sql)?)
    }

    /// Evaluate a Gremlin traversal with the step-at-a-time interpreter
    /// over this store's Blueprints API (the chatty mode; used for
    /// differential testing and the Blueprints-style comparison).
    pub fn query_interpreted(&self, gremlin: &str) -> Result<Relation, CoreError> {
        let stmt = parse(gremlin)?;
        let elems = interp::execute(self, &stmt)?;
        Ok(elems_to_relation(elems))
    }

    // ------------------------------------------------------------------
    // CRUD (the paper's stored procedures)
    // ------------------------------------------------------------------

    /// Run `f` as one autocommit transaction, retrying a bounded number of
    /// times when it loses a first-updater-wins conflict. Each attempt
    /// re-runs the closure against a fresh snapshot, so its reads observe
    /// whatever the winning writer committed.
    pub(crate) fn retry_txn<T>(
        &self,
        f: impl Fn(&mut Txn<'_>) -> sqlgraph_rel::Result<T>,
    ) -> Result<T, CoreError> {
        let mut attempts = 0usize;
        loop {
            match self.db.transaction(&f) {
                Err(sqlgraph_rel::Error::TxnConflict(msg)) => {
                    attempts += 1;
                    if attempts >= TXN_RETRIES {
                        return Err(sqlgraph_rel::Error::TxnConflict(msg).into());
                    }
                    std::thread::yield_now();
                }
                other => return other.map_err(CoreError::from),
            }
        }
    }

    /// Open a multi-statement graph transaction.
    ///
    /// Every mutation issued through the returned handle is provisional
    /// until [`GraphTxn::commit`]; reads through the handle see the
    /// snapshot taken here plus the transaction's own writes, and nothing
    /// from writers that commit later (snapshot isolation). Dropping the
    /// handle rolls back.
    ///
    /// The handle holds the store's mutation lock exclusively for its
    /// lifetime: autocommit mutations and checkpoints wait until it
    /// finishes, which keeps the multi-table invariants (no dangling
    /// adjacency entries) safe from interleaving without giving up
    /// lock-free *reads* — queries on other threads still run against
    /// their own snapshots.
    pub fn transaction(&self) -> GraphTxn<'_> {
        let exclusive = self.mutation_lock.write();
        GraphTxn {
            txn: self.db.begin(),
            layout: self.layout.read().clone(),
            graph: self,
            _exclusive: exclusive,
        }
    }

    /// [`SqlGraph::transaction`] without blocking: `None` if another
    /// transaction (or an autocommit mutation / checkpoint) holds the
    /// mutation lock. The wire server's session threads poll this instead
    /// of parking in `transaction()`, so a shutdown request can interrupt
    /// a `BEGIN` that is queued behind a long-lived transaction.
    pub fn try_transaction(&self) -> Option<GraphTxn<'_>> {
        let exclusive = self.mutation_lock.try_write()?;
        Some(GraphTxn {
            txn: self.db.begin(),
            layout: self.layout.read().clone(),
            graph: self,
            _exclusive: exclusive,
        })
    }

    /// Add a vertex with properties; returns its id.
    pub fn add_vertex<'p>(
        &self,
        props: impl IntoIterator<Item = (&'p str, Json)>,
    ) -> Result<i64, CoreError> {
        let props: Vec<(String, Json)> =
            props.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        self.add_vertex_props(&props)
    }

    fn add_vertex_props(&self, props: &[(String, Json)]) -> Result<i64, CoreError> {
        let _shared = self.mutation_lock.read();
        let vid = self.next_vid.fetch_add(1, Ordering::SeqCst);
        let attr = Value::json(props_to_json(props));
        self.retry_txn(|tx| self.add_vertex_in(tx, vid, &attr))?;
        Ok(vid)
    }

    /// Insert the vertex attribute row and both empty primary adjacency
    /// rows inside `tx`.
    pub(crate) fn add_vertex_in(
        &self,
        tx: &mut Txn<'_>,
        vid: i64,
        attr: &Value,
    ) -> sqlgraph_rel::Result<()> {
        tx.execute_with_params(
            "INSERT INTO va VALUES (?, ?)",
            &[Value::Int(vid), attr.clone()],
        )?;
        for pa in ["opa", "ipa"] {
            let rowno = self.next_rowno.fetch_add(1, Ordering::Relaxed);
            tx.execute_with_params(
                &format!("INSERT INTO {pa} (rowno, vid, spill) VALUES (?, ?, 0)"),
                &[Value::Int(rowno), Value::Int(vid)],
            )?;
        }
        Ok(())
    }

    /// Add an edge `src -label-> dst`; returns its id.
    pub fn add_edge<'p>(
        &self,
        src: i64,
        dst: i64,
        label: &str,
        props: impl IntoIterator<Item = (&'p str, Json)>,
    ) -> Result<i64, CoreError> {
        let props: Vec<(String, Json)> =
            props.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        self.add_edge_props(src, dst, label, &props)
    }

    fn add_edge_props(
        &self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> Result<i64, CoreError> {
        let _shared = self.mutation_lock.read();
        for v in [src, dst] {
            if !self.vertex_exists_internal(v)? {
                return Err(CoreError::Graph(GraphError::new(format!("no vertex {v}"))));
            }
        }
        let eid = self.next_eid.fetch_add(1, Ordering::SeqCst);
        let attr = Value::json(props_to_json(props));
        let layout = self.layout.read().clone();
        self.retry_txn(|tx| self.add_edge_in(tx, &layout, eid, src, dst, label, &attr))?;
        Ok(eid)
    }

    /// Insert the edge attribute/triple row and both adjacency entries
    /// inside `tx`.
    #[allow(clippy::too_many_arguments)] // (txn, layout, eid, src, dst, label, attr) is the natural shape
    pub(crate) fn add_edge_in(
        &self,
        tx: &mut Txn<'_>,
        layout: &GraphLayout,
        eid: i64,
        src: i64,
        dst: i64,
        label: &str,
        attr: &Value,
    ) -> sqlgraph_rel::Result<()> {
        tx.execute_with_params(
            "INSERT INTO ea VALUES (?, ?, ?, ?, ?)",
            &[
                Value::Int(eid),
                Value::Int(src),
                Value::Int(dst),
                Value::str(label),
                attr.clone(),
            ],
        )?;
        self.attach(tx, layout, true, src, label, eid, dst)?;
        self.attach(tx, layout, false, dst, label, eid, src)?;
        Ok(())
    }

    /// Insert `(label, eid, other)` into one direction's adjacency tables.
    #[allow(clippy::too_many_arguments)] // (txn, layout, direction, vid, label, eid, other) is the natural shape
    pub(crate) fn attach(
        &self,
        tx: &mut Txn<'_>,
        layout: &GraphLayout,
        out: bool,
        vid: i64,
        label: &str,
        eid: i64,
        other: i64,
    ) -> sqlgraph_rel::Result<()> {
        let (pa, sa) = if out { ("opa", "osa") } else { ("ipa", "isa") };
        let col = if out {
            layout.out_column(label)
        } else {
            layout.in_column(label)
        };
        let rows = tx.execute_with_params(
            &format!("SELECT rowno, lbl{col}, eid{col}, val{col} FROM {pa} WHERE vid = ?"),
            &[Value::Int(vid)],
        )?;
        // Same label already present?
        if let Some(row) = rows.rows.iter().find(|r| r[1].as_str() == Some(label)) {
            let rowno = row[0].clone();
            if row[2].is_null() {
                // Already multi-valued: append to the secondary table.
                tx.execute_with_params(
                    &format!("INSERT INTO {sa} VALUES (?, ?, ?)"),
                    &[row[3].clone(), Value::Int(eid), Value::Int(other)],
                )?;
            } else {
                // Single → multi migration.
                let valid = MV_BASE + self.next_valid.fetch_add(1, Ordering::Relaxed);
                tx.execute_with_params(
                    &format!("INSERT INTO {sa} VALUES (?, ?, ?), (?, ?, ?)"),
                    &[
                        Value::Int(valid),
                        row[2].clone(),
                        row[3].clone(),
                        Value::Int(valid),
                        Value::Int(eid),
                        Value::Int(other),
                    ],
                )?;
                tx.execute_with_params(
                    &format!("UPDATE {pa} SET eid{col} = NULL, val{col} = ? WHERE rowno = ?"),
                    &[Value::Int(valid), rowno],
                )?;
            }
            return Ok(());
        }
        // Free triad on an existing row?
        if let Some(row) = rows.rows.iter().find(|r| r[1].is_null()) {
            tx.execute_with_params(
                &format!(
                    "UPDATE {pa} SET lbl{col} = ?, eid{col} = ?, val{col} = ? WHERE rowno = ?"
                ),
                &[
                    Value::str(label),
                    Value::Int(eid),
                    Value::Int(other),
                    row[0].clone(),
                ],
            )?;
            return Ok(());
        }
        // New row: primary if the vertex had none yet, spill otherwise.
        let spill = i64::from(!rows.rows.is_empty());
        let rowno = self.next_rowno.fetch_add(1, Ordering::Relaxed);
        tx.execute_with_params(
            &format!(
                "INSERT INTO {pa} (rowno, vid, spill, lbl{col}, eid{col}, val{col}) \
                 VALUES (?, ?, {spill}, ?, ?, ?)"
            ),
            &[
                Value::Int(rowno),
                Value::Int(vid),
                Value::str(label),
                Value::Int(eid),
                Value::Int(other),
            ],
        )?;
        Ok(())
    }

    /// Remove `eid` from one direction's adjacency tables.
    pub(crate) fn detach(
        &self,
        tx: &mut Txn<'_>,
        layout: &GraphLayout,
        out: bool,
        vid: i64,
        label: &str,
        eid: i64,
    ) -> sqlgraph_rel::Result<()> {
        let (pa, sa) = if out { ("opa", "osa") } else { ("ipa", "isa") };
        let col = if out {
            layout.out_column(label)
        } else {
            layout.in_column(label)
        };
        let rows = tx.execute_with_params(
            &format!("SELECT rowno, lbl{col}, eid{col}, val{col} FROM {pa} WHERE vid = ?"),
            &[Value::Int(vid)],
        )?;
        let Some(row) = rows.rows.iter().find(|r| r[1].as_str() == Some(label)) else {
            return Ok(()); // already detached (idempotent)
        };
        let rowno = row[0].clone();
        if row[2].is_null() {
            // Multi-valued list: remove this edge's entry.
            let valid = row[3].clone();
            tx.execute_with_params(
                &format!("DELETE FROM {sa} WHERE valid = ? AND eid = ?"),
                &[valid.clone(), Value::Int(eid)],
            )?;
            let left = tx
                .execute_with_params(
                    &format!("SELECT COUNT(*) FROM {sa} WHERE valid = ?"),
                    &[valid],
                )?
                .scalar()
                .and_then(Value::as_int)
                .unwrap_or(0);
            if left == 0 {
                tx.execute_with_params(
                    &format!(
                        "UPDATE {pa} SET lbl{col} = NULL, eid{col} = NULL, val{col} = NULL \
                         WHERE rowno = ?"
                    ),
                    &[rowno],
                )?;
            }
        } else if row[2].as_int() == Some(eid) {
            tx.execute_with_params(
                &format!(
                    "UPDATE {pa} SET lbl{col} = NULL, eid{col} = NULL, val{col} = NULL \
                     WHERE rowno = ?"
                ),
                &[rowno],
            )?;
        }
        Ok(())
    }

    fn remove_edge_impl(&self, eid: i64) -> Result<(), CoreError> {
        let _shared = self.mutation_lock.read();
        let layout = self.layout.read().clone();
        self.retry_txn(|tx| self.remove_edge_in(tx, &layout, eid))?;
        Ok(())
    }

    /// Delete the edge row and detach both endpoints inside `tx`.
    pub(crate) fn remove_edge_in(
        &self,
        tx: &mut Txn<'_>,
        layout: &GraphLayout,
        eid: i64,
    ) -> sqlgraph_rel::Result<()> {
        let rel = tx.execute_with_params(
            "SELECT inv, outv, lbl FROM ea WHERE eid = ?",
            &[Value::Int(eid)],
        )?;
        let Some(row) = rel.rows.first() else {
            return Err(sqlgraph_rel::Error::NotFound(format!("edge {eid}")));
        };
        let (src, dst) = (row[0].as_int().unwrap_or(-1), row[1].as_int().unwrap_or(-1));
        let label = row[2].as_str().unwrap_or("").to_string();
        tx.execute_with_params("DELETE FROM ea WHERE eid = ?", &[Value::Int(eid)])?;
        self.detach(tx, layout, true, src, &label, eid)?;
        self.detach(tx, layout, false, dst, &label, eid)?;
        Ok(())
    }

    fn remove_vertex_impl(&self, vid: i64) -> Result<(), CoreError> {
        let _exclusive = self.mutation_lock.write();
        if !self.vertex_exists_internal(vid)? {
            return Err(CoreError::Graph(GraphError::new(format!(
                "no vertex {vid}"
            ))));
        }
        let layout = self.layout.read().clone();
        self.retry_txn(|tx| self.remove_vertex_in(tx, &layout, vid))?;
        Ok(())
    }

    /// The §4.5.2 vertex-removal procedure inside `tx`: delete every
    /// incident edge, then mark the vertex's own rows with the negative-ID
    /// tombstone.
    fn remove_vertex_in(
        &self,
        tx: &mut Txn<'_>,
        layout: &GraphLayout,
        vid: i64,
    ) -> sqlgraph_rel::Result<()> {
        // All incident edges via the redundant EA triple table.
        let mut incident: Vec<(i64, i64, i64, String)> = Vec::new();
        for key in ["inv", "outv"] {
            let rel = tx.execute_with_params(
                &format!("SELECT eid, inv, outv, lbl FROM ea WHERE {key} = ?"),
                &[Value::Int(vid)],
            )?;
            for row in &rel.rows {
                incident.push((
                    row[0].as_int().unwrap_or(-1),
                    row[1].as_int().unwrap_or(-1),
                    row[2].as_int().unwrap_or(-1),
                    row[3].as_str().unwrap_or("").to_string(),
                ));
            }
        }
        incident.sort_by_key(|(e, ..)| *e);
        incident.dedup_by_key(|(e, ..)| *e);
        for (eid, src, dst, label) in incident {
            tx.execute_with_params("DELETE FROM ea WHERE eid = ?", &[Value::Int(eid)])?;
            self.detach(tx, layout, true, src, &label, eid)?;
            self.detach(tx, layout, false, dst, &label, eid)?;
        }
        // Negative-ID marking (§4.5.2): cheap logical deletion of the
        // vertex's own rows; vacuum() removes them physically.
        let marked = Value::Int(deleted_id(vid));
        tx.execute_with_params(
            "UPDATE va SET vid = ? WHERE vid = ?",
            &[marked.clone(), Value::Int(vid)],
        )?;
        for pa in ["opa", "ipa"] {
            tx.execute_with_params(
                &format!("UPDATE {pa} SET vid = ? WHERE vid = ?"),
                &[marked.clone(), Value::Int(vid)],
            )?;
        }
        Ok(())
    }

    fn set_vertex_property_impl(&self, vid: i64, key: &str, value: &Json) -> Result<(), CoreError> {
        let _shared = self.mutation_lock.read();
        self.retry_txn(|tx| Self::set_property_in(tx, "va", "vid", vid, key, value))
    }

    fn set_edge_property_impl(&self, eid: i64, key: &str, value: &Json) -> Result<(), CoreError> {
        let _shared = self.mutation_lock.read();
        self.retry_txn(|tx| Self::set_property_in(tx, "ea", "eid", eid, key, value))
    }

    /// Read-modify-write of one element's JSON attribute document inside
    /// `tx`. `table`/`id_col` select the element kind (`va`/`vid` or
    /// `ea`/`eid`).
    pub(crate) fn set_property_in(
        tx: &mut Txn<'_>,
        table: &str,
        id_col: &str,
        id: i64,
        key: &str,
        value: &Json,
    ) -> sqlgraph_rel::Result<()> {
        let rel = tx.execute_with_params(
            &format!("SELECT attr FROM {table} WHERE {id_col} = ?"),
            &[Value::Int(id)],
        )?;
        let Some(Value::Json(doc)) = rel.rows.first().and_then(|r| r.first()) else {
            let kind = if table == "va" { "vertex" } else { "edge" };
            return Err(sqlgraph_rel::Error::NotFound(format!("{kind} {id}")));
        };
        let mut doc = (**doc).clone();
        if let Some(obj) = doc.as_object_mut() {
            obj.insert(key, value.clone());
        }
        tx.execute_with_params(
            &format!("UPDATE {table} SET attr = ? WHERE {id_col} = ?"),
            &[Value::json(doc), Value::Int(id)],
        )?;
        Ok(())
    }

    /// Run a traversal under `EXPLAIN`: returns the relational engine's
    /// access-path decisions for the generated SQL.
    pub fn explain_query(&self, gremlin: &str) -> Result<Relation, CoreError> {
        let sql = self.translate_query(gremlin)?;
        Ok(self.db.execute(&format!("EXPLAIN {sql}"))?)
    }

    /// Create a functional index on a vertex attribute —
    /// `JSON_VAL(va.attr, key)` — the paper's "specialized indexes for
    /// attributes" (§3.3). Speeds `has('key', v)` filters, `g.V('key', v)`
    /// starts, and `vertices_by_property`.
    pub fn create_vertex_property_index(&self, key: &str) -> Result<(), CoreError> {
        let name = format!("va_attr_{}", sanitize_index_name(key));
        self.db.execute(&format!(
            "CREATE INDEX IF NOT EXISTS {name} ON va (JSON_VAL(attr, '{}')) USING BTREE",
            key.replace('\'', "''")
        ))?;
        Ok(())
    }

    /// Create a functional index on an edge attribute.
    pub fn create_edge_property_index(&self, key: &str) -> Result<(), CoreError> {
        let name = format!("ea_attr_{}", sanitize_index_name(key));
        self.db.execute(&format!(
            "CREATE INDEX IF NOT EXISTS {name} ON ea (JSON_VAL(attr, '{}')) USING BTREE",
            key.replace('\'', "''")
        ))?;
        Ok(())
    }

    /// Offline cleanup (§4.5.2): physically remove rows marked deleted.
    pub fn vacuum(&self) -> Result<usize, CoreError> {
        let _exclusive = self.mutation_lock.write();
        let mut removed = 0usize;
        for table in ["va", "opa", "ipa"] {
            let rel = self
                .db
                .execute(&format!("DELETE FROM {table} WHERE vid < 0"))?;
            removed += rel.scalar().and_then(Value::as_int).unwrap_or(0) as usize;
        }
        // Reclaim secondary-adjacency lists whose owning primary row is
        // gone (their list ids are no longer referenced by any triad).
        for (pa, sa, buckets) in [
            ("opa", "osa", self.config.out_buckets),
            ("ipa", "isa", self.config.in_buckets),
        ] {
            let triads: Vec<String> = (0..buckets).map(|i| format!("(p.val{i})")).collect();
            let rel = self.db.execute(&format!(
                "DELETE FROM {sa} WHERE valid NOT IN (                 SELECT t.v FROM {pa} p, TABLE(VALUES {}) AS t(v)                  WHERE t.v >= {MV_BASE})",
                triads.join(", "),
            ))?;
            removed += rel.scalar().and_then(Value::as_int).unwrap_or(0) as usize;
        }
        Ok(removed)
    }

    pub(crate) fn vertex_exists_internal(&self, vid: i64) -> Result<bool, CoreError> {
        let rel = self
            .db
            .execute_with_params("SELECT vid FROM va WHERE vid = ?", &[Value::Int(vid)])?;
        Ok(!rel.rows.is_empty())
    }

    /// [`SqlGraph::vertex_exists_internal`] evaluated inside `tx`, so a
    /// vertex added earlier in the same transaction counts as existing.
    fn vertex_exists_tx(&self, tx: &mut Txn<'_>, vid: i64) -> sqlgraph_rel::Result<bool> {
        let rel = tx.execute_with_params("SELECT vid FROM va WHERE vid = ?", &[Value::Int(vid)])?;
        Ok(!rel.rows.is_empty())
    }

    /// Where this store's vertex-id counter stands (for shard-global
    /// allocation: the sharded layer takes the max across shards).
    pub(crate) fn next_vid_hint(&self) -> i64 {
        self.next_vid.load(Ordering::SeqCst)
    }

    /// Where this store's edge-id counter stands.
    pub(crate) fn next_eid_hint(&self) -> i64 {
        self.next_eid.load(Ordering::SeqCst)
    }
}

/// Compute the §3.2 coloring layout for the union of one or more graphs'
/// per-vertex label sets. Shards pass every partition's data so the
/// coloring — and therefore the bucket each label hashes to — is identical
/// on all shards.
pub(crate) fn layout_for<'a>(
    config: &SchemaConfig,
    datasets: impl IntoIterator<Item = &'a GraphData>,
) -> GraphLayout {
    let mut out_labels: BTreeMap<i64, BTreeSet<&'a str>> = BTreeMap::new();
    let mut in_labels: BTreeMap<i64, BTreeSet<&'a str>> = BTreeMap::new();
    for data in datasets {
        for (_, src, dst, label, _) in &data.edges {
            out_labels.entry(*src).or_default().insert(label);
            in_labels.entry(*dst).or_default().insert(label);
        }
    }
    GraphLayout {
        out: color_labels(
            out_labels
                .values()
                .map(|s| s.iter().copied().collect::<Vec<_>>()),
            config.out_buckets,
        ),
        incoming: color_labels(
            in_labels
                .values()
                .map(|s| s.iter().copied().collect::<Vec<_>>()),
            config.in_buckets,
        ),
        out_buckets: config.out_buckets,
        in_buckets: config.in_buckets,
    }
}

// ----------------------------------------------------------------------
// Multi-statement graph transactions
// ----------------------------------------------------------------------

/// A multi-statement graph transaction with snapshot isolation.
///
/// Created by [`SqlGraph::transaction`]. Mutations buffer provisionally in
/// the underlying relational transaction and become visible atomically at
/// [`GraphTxn::commit`]; [`GraphTxn::query`] runs traversals against the
/// transaction's snapshot plus its own writes. Dropping the handle without
/// committing rolls everything back — including a partially applied
/// vertex-removal procedure, which is exactly the multi-table update the
/// paper runs as a stored-procedure transaction (§4.5.2).
pub struct GraphTxn<'g> {
    graph: &'g SqlGraph,
    txn: Txn<'g>,
    /// Layout frozen at `transaction()`; safe because the mutation lock
    /// excludes concurrent bulk loads (the only layout writers).
    layout: GraphLayout,
    /// Held exclusively so no autocommit mutation or checkpoint
    /// interleaves with this transaction's statements. Declared after
    /// `txn` so the rollback (via `Txn::drop`) happens before the lock is
    /// released.
    _exclusive: RwLockWriteGuard<'g, ()>,
}

impl<'g> GraphTxn<'g> {
    /// Add a vertex with properties; returns its id.
    ///
    /// The id is allocated eagerly from the store's counter; rolling the
    /// transaction back leaves a gap in the id space (standard sequence
    /// semantics).
    pub fn add_vertex(&mut self, props: &[(String, Json)]) -> Result<i64, CoreError> {
        let vid = self.graph.next_vid.fetch_add(1, Ordering::SeqCst);
        let attr = Value::json(props_to_json(props));
        self.graph.add_vertex_in(&mut self.txn, vid, &attr)?;
        Ok(vid)
    }

    /// Add an edge `src -label-> dst`; returns its id. Endpoints created
    /// earlier in this transaction are valid targets.
    pub fn add_edge(
        &mut self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> Result<i64, CoreError> {
        for v in [src, dst] {
            if !self.graph.vertex_exists_tx(&mut self.txn, v)? {
                return Err(CoreError::Graph(GraphError::new(format!("no vertex {v}"))));
            }
        }
        let eid = self.graph.next_eid.fetch_add(1, Ordering::SeqCst);
        let attr = Value::json(props_to_json(props));
        self.graph
            .add_edge_in(&mut self.txn, &self.layout, eid, src, dst, label, &attr)?;
        Ok(eid)
    }

    /// Remove a vertex and all incident edges (the §4.5.2 negative-ID
    /// procedure), atomically with the rest of this transaction.
    pub fn remove_vertex(&mut self, vid: i64) -> Result<(), CoreError> {
        if !self.graph.vertex_exists_tx(&mut self.txn, vid)? {
            return Err(CoreError::Graph(GraphError::new(format!(
                "no vertex {vid}"
            ))));
        }
        self.graph
            .remove_vertex_in(&mut self.txn, &self.layout, vid)?;
        Ok(())
    }

    /// Remove an edge.
    pub fn remove_edge(&mut self, eid: i64) -> Result<(), CoreError> {
        self.graph
            .remove_edge_in(&mut self.txn, &self.layout, eid)?;
        Ok(())
    }

    /// Set (or replace) a vertex property.
    pub fn set_vertex_property(
        &mut self,
        vid: i64,
        key: &str,
        value: &Json,
    ) -> Result<(), CoreError> {
        SqlGraph::set_property_in(&mut self.txn, "va", "vid", vid, key, value)?;
        Ok(())
    }

    /// Set (or replace) an edge property.
    pub fn set_edge_property(
        &mut self,
        eid: i64,
        key: &str,
        value: &Json,
    ) -> Result<(), CoreError> {
        SqlGraph::set_property_in(&mut self.txn, "ea", "eid", eid, key, value)?;
        Ok(())
    }

    /// Execute a Gremlin statement inside this transaction. Traversals
    /// compile to a single SQL statement evaluated against the
    /// transaction's snapshot (plus its own writes); CRUD statements route
    /// to the transactional mutation methods. The interpreter fallback is
    /// not available here — it reads through the autocommit Blueprints
    /// API, which would escape the snapshot — so non-translatable
    /// traversals return [`CoreError::Unsupported`].
    pub fn query(&mut self, gremlin: &str) -> Result<Relation, CoreError> {
        match parse(gremlin)? {
            GremlinStatement::Query(pipeline) => {
                let sql = translate(&pipeline, &self.layout)
                    .map_err(|u| CoreError::Unsupported(u.reason))?;
                Ok(self.txn.execute(&sql)?)
            }
            GremlinStatement::AddVertex { props } => {
                let id = self.add_vertex(&props)?;
                Ok(Relation::new(
                    vec!["val".into()],
                    vec![vec![Value::Int(id)]],
                ))
            }
            GremlinStatement::AddEdge {
                src,
                dst,
                label,
                props,
            } => {
                let id = self.add_edge(src, dst, &label, &props)?;
                Ok(Relation::new(
                    vec!["val".into()],
                    vec![vec![Value::Int(id)]],
                ))
            }
            GremlinStatement::RemoveVertex { id } => {
                self.remove_vertex(id)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
            GremlinStatement::RemoveEdge { id } => {
                self.remove_edge(id)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
            GremlinStatement::SetVertexProperty { id, key, value } => {
                self.set_vertex_property(id, &key, &value)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
            GremlinStatement::SetEdgeProperty { id, key, value } => {
                self.set_edge_property(id, &key, &value)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
        }
    }

    /// Run raw SQL inside this transaction (inspection, tests).
    pub fn sql(&mut self, statement: &str) -> Result<Relation, CoreError> {
        Ok(self.txn.execute(statement)?)
    }

    /// Run raw SQL with positional `?` parameters inside this transaction.
    pub fn sql_with_params(
        &mut self,
        statement: &str,
        params: &[Value],
    ) -> Result<Relation, CoreError> {
        Ok(self.txn.execute_with_params(statement, params)?)
    }

    /// SQL statements executed so far in this transaction. Graph calls
    /// like [`GraphTxn::add_edge`] run several; benchmarks that model a
    /// plain-SQL client charge one round trip per statement.
    pub fn statements_executed(&self) -> u64 {
        self.txn.statements_executed()
    }

    /// Make every buffered mutation visible atomically.
    pub fn commit(self) -> Result<(), CoreError> {
        Ok(self.txn.commit()?)
    }

    /// Discard every buffered mutation (also what `Drop` does).
    pub fn rollback(self) {
        self.txn.rollback();
    }
}

impl GraphTransaction for GraphTxn<'_> {
    fn add_vertex(&mut self, props: &[(String, Json)]) -> GraphResult<i64> {
        GraphTxn::add_vertex(self, props).map_err(to_graph_error)
    }

    fn add_edge(
        &mut self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> GraphResult<i64> {
        GraphTxn::add_edge(self, src, dst, label, props).map_err(to_graph_error)
    }

    fn remove_vertex(&mut self, v: i64) -> GraphResult<()> {
        GraphTxn::remove_vertex(self, v).map_err(to_graph_error)
    }

    fn remove_edge(&mut self, e: i64) -> GraphResult<()> {
        GraphTxn::remove_edge(self, e).map_err(to_graph_error)
    }

    fn set_vertex_property(&mut self, v: i64, key: &str, value: &Json) -> GraphResult<()> {
        GraphTxn::set_vertex_property(self, v, key, value).map_err(to_graph_error)
    }

    fn set_edge_property(&mut self, e: i64, key: &str, value: &Json) -> GraphResult<()> {
        GraphTxn::set_edge_property(self, e, key, value).map_err(to_graph_error)
    }

    fn commit(self: Box<Self>) -> GraphResult<()> {
        GraphTxn::commit(*self).map_err(to_graph_error)
    }

    fn rollback(self: Box<Self>) {
        GraphTxn::rollback(*self);
    }
}

/// Lower-case alphanumeric identifier fragment from a property key.
fn sanitize_index_name(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Properties → a JSON object document.
pub fn props_to_json(props: &[(String, Json)]) -> Json {
    Json::Object(
        props
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect::<JsonObject>(),
    )
}

/// Engine value → JSON (for Blueprints property reads).
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::int(*i),
        Value::Double(f) => Json::float(*f),
        Value::Str(s) => Json::str(s.as_ref()),
        Value::Json(j) => (**j).clone(),
        Value::Array(items) => Json::Array(items.iter().map(value_to_json).collect()),
    }
}

pub(crate) fn elems_to_relation(elems: Vec<interp::Elem>) -> Relation {
    Relation::new(
        vec!["val".into()],
        elems
            .into_iter()
            .map(|e| {
                vec![match e {
                    interp::Elem::Vertex(v) | interp::Elem::Edge(v) => Value::Int(v),
                    interp::Elem::Value(j) => sqlgraph_rel::expr::json_to_value(&j),
                }]
            })
            .collect(),
    )
}

// ----------------------------------------------------------------------
// Blueprints: the chatty per-call API over the same tables.
// ----------------------------------------------------------------------

impl Blueprints for SqlGraph {
    fn vertex_ids(&self) -> Vec<i64> {
        self.db
            .execute("SELECT vid FROM va WHERE vid >= 0")
            .map(|r| r.int_column())
            .unwrap_or_default()
    }

    fn edge_ids(&self) -> Vec<i64> {
        self.db
            .execute("SELECT eid FROM ea")
            .map(|r| r.int_column())
            .unwrap_or_default()
    }

    fn vertex_exists(&self, v: i64) -> bool {
        self.vertex_exists_internal(v).unwrap_or(false)
    }

    fn edge_exists(&self, e: i64) -> bool {
        self.db
            .execute_with_params("SELECT eid FROM ea WHERE eid = ?", &[Value::Int(e)])
            .map(|r| !r.rows.is_empty())
            .unwrap_or(false)
    }

    fn edges_of(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        let mut out = Vec::new();
        let lbl_filter = if labels.is_empty() {
            String::new()
        } else {
            let list: Vec<String> = labels
                .iter()
                .map(|l| format!("'{}'", l.replace('\'', "''")))
                .collect();
            format!(" AND lbl IN ({})", list.join(", "))
        };
        if matches!(dir, Direction::Out | Direction::Both) {
            if let Ok(r) = self.db.execute_with_params(
                &format!("SELECT eid FROM ea WHERE inv = ?{lbl_filter}"),
                &[Value::Int(v)],
            ) {
                out.extend(r.int_column());
            }
        }
        if matches!(dir, Direction::In | Direction::Both) {
            if let Ok(r) = self.db.execute_with_params(
                &format!("SELECT eid FROM ea WHERE outv = ?{lbl_filter}"),
                &[Value::Int(v)],
            ) {
                out.extend(r.int_column());
            }
        }
        out
    }

    fn adjacent(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        // Single-hop neighbor lookups use the redundant EA table (§3.5).
        let mut out = Vec::new();
        let lbl_filter = if labels.is_empty() {
            String::new()
        } else {
            let list: Vec<String> = labels
                .iter()
                .map(|l| format!("'{}'", l.replace('\'', "''")))
                .collect();
            format!(" AND lbl IN ({})", list.join(", "))
        };
        if matches!(dir, Direction::Out | Direction::Both) {
            if let Ok(r) = self.db.execute_with_params(
                &format!("SELECT outv FROM ea WHERE inv = ?{lbl_filter}"),
                &[Value::Int(v)],
            ) {
                out.extend(r.int_column());
            }
        }
        if matches!(dir, Direction::In | Direction::Both) {
            if let Ok(r) = self.db.execute_with_params(
                &format!("SELECT inv FROM ea WHERE outv = ?{lbl_filter}"),
                &[Value::Int(v)],
            ) {
                out.extend(r.int_column());
            }
        }
        out
    }

    fn edge_label(&self, e: i64) -> Option<String> {
        self.db
            .execute_with_params("SELECT lbl FROM ea WHERE eid = ?", &[Value::Int(e)])
            .ok()?
            .rows
            .first()
            .and_then(|r| r[0].as_str().map(str::to_string))
    }

    fn edge_source(&self, e: i64) -> Option<i64> {
        self.db
            .execute_with_params("SELECT inv FROM ea WHERE eid = ?", &[Value::Int(e)])
            .ok()?
            .rows
            .first()
            .and_then(|r| r[0].as_int())
    }

    fn edge_target(&self, e: i64) -> Option<i64> {
        self.db
            .execute_with_params("SELECT outv FROM ea WHERE eid = ?", &[Value::Int(e)])
            .ok()?
            .rows
            .first()
            .and_then(|r| r[0].as_int())
    }

    fn vertex_property(&self, v: i64, key: &str) -> Option<Json> {
        let rel = self
            .db
            .execute_with_params(
                "SELECT JSON_VAL(attr, ?) FROM va WHERE vid = ?",
                &[Value::str(key), Value::Int(v)],
            )
            .ok()?;
        let value = rel.rows.first()?.first()?;
        if value.is_null() {
            None
        } else {
            Some(value_to_json(value))
        }
    }

    fn edge_property(&self, e: i64, key: &str) -> Option<Json> {
        let rel = self
            .db
            .execute_with_params(
                "SELECT JSON_VAL(attr, ?) FROM ea WHERE eid = ?",
                &[Value::str(key), Value::Int(e)],
            )
            .ok()?;
        let value = rel.rows.first()?.first()?;
        if value.is_null() {
            None
        } else {
            Some(value_to_json(value))
        }
    }

    fn vertices_by_property(&self, key: &str, value: &Json) -> Vec<i64> {
        let engine_value = sqlgraph_rel::expr::json_to_value(value);
        self.db
            .execute_with_params(
                "SELECT vid FROM va WHERE vid >= 0 AND JSON_VAL(attr, ?) = ?",
                &[Value::str(key), engine_value],
            )
            .map(|r| r.int_column())
            .unwrap_or_default()
    }

    fn add_vertex(&self, props: &[(String, Json)]) -> GraphResult<i64> {
        self.add_vertex_props(props).map_err(to_graph_error)
    }

    fn add_edge(
        &self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> GraphResult<i64> {
        self.add_edge_props(src, dst, label, props)
            .map_err(to_graph_error)
    }

    fn remove_vertex(&self, v: i64) -> GraphResult<()> {
        self.remove_vertex_impl(v).map_err(to_graph_error)
    }

    fn remove_edge(&self, e: i64) -> GraphResult<()> {
        self.remove_edge_impl(e).map_err(to_graph_error)
    }

    fn set_vertex_property(&self, v: i64, key: &str, value: &Json) -> GraphResult<()> {
        self.set_vertex_property_impl(v, key, value)
            .map_err(to_graph_error)
    }

    fn set_edge_property(&self, e: i64, key: &str, value: &Json) -> GraphResult<()> {
        self.set_edge_property_impl(e, key, value)
            .map_err(to_graph_error)
    }
}

pub(crate) fn to_graph_error(e: CoreError) -> GraphError {
    GraphError::new(e.to_string())
}
