//! Edge-label → column assignment by graph coloring (§3.2 of the paper,
//! after Bornea et al.).
//!
//! Two edge labels *co-occur* when some vertex's adjacency list contains
//! both. Labels that co-occur must land in different column triads of the
//! hash adjacency table or the vertex needs a spill row. The paper builds a
//! co-occurrence graph over a representative sample and colors it greedily;
//! the color is the column index. When the co-occurrence graph needs more
//! colors than the configured column budget, the least-conflicting color is
//! chosen and the residual conflicts become spill rows — Table 3 reports
//! exactly these statistics.

use std::collections::{HashMap, HashSet};

/// Column assignment for a set of edge labels.
#[derive(Debug, Clone, Default)]
pub struct ColorMap {
    /// label → column index.
    assignment: HashMap<String, usize>,
    /// Number of columns (colors) in use.
    columns: usize,
    /// Maximum columns allowed (the hash table width budget).
    max_columns: usize,
}

impl ColorMap {
    /// The configured width budget.
    pub fn max_columns(&self) -> usize {
        self.max_columns.max(1)
    }
}

impl ColorMap {
    /// A pure-hash map with `columns` buckets and no colored assignments —
    /// the layout of a store built incrementally with no sample to color.
    pub fn hashed(columns: usize) -> ColorMap {
        ColorMap {
            assignment: HashMap::new(),
            columns: columns.max(1),
            max_columns: columns.max(1),
        }
    }

    /// Column for `label`: the colored assignment if the label was in the
    /// sample, otherwise a deterministic hash into the existing columns
    /// (the paper's behaviour for labels that appear after layout time).
    pub fn column(&self, label: &str) -> usize {
        if let Some(&c) = self.assignment.get(label) {
            return c;
        }
        if self.columns == 0 {
            return 0;
        }
        (fx_str(label) as usize) % self.columns
    }

    /// True if `label` was part of the colored sample.
    pub fn contains(&self, label: &str) -> bool {
        self.assignment.contains_key(label)
    }

    /// Number of columns (color classes).
    pub fn columns(&self) -> usize {
        self.columns.max(1)
    }

    /// Number of distinct labels assigned.
    pub fn labels(&self) -> usize {
        self.assignment.len()
    }

    /// Iterate `(label, column)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.assignment.iter().map(|(l, c)| (l.as_str(), *c))
    }

    /// Histogram: how many labels share each column ("hashed bucket size").
    pub fn bucket_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.columns()];
        for &c in self.assignment.values() {
            sizes[c] += 1;
        }
        sizes
    }
}

/// Deterministic FxHash of a string (no RandomState — layouts must be
/// stable across runs).
fn fx_str(s: &str) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut hash: u64 = 0;
    for chunk in s.as_bytes().chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        hash = (hash.rotate_left(5) ^ u64::from_le_bytes(buf)).wrapping_mul(SEED);
    }
    hash
}

/// Build a [`ColorMap`] from a sample of adjacency-list label sets.
///
/// `lists` yields, per vertex, the set of labels in its (out- or in-)
/// adjacency list. `max_columns` bounds the table width.
///
/// Greedy largest-degree-first coloring: process labels by co-occurrence
/// degree, assign the smallest color unused by any already-colored
/// co-occurring label; if every color below `max_columns` conflicts, pick
/// the color with the fewest conflicting neighbors.
pub fn color_labels<I, S>(lists: I, max_columns: usize) -> ColorMap
where
    I: IntoIterator<Item = Vec<S>>,
    S: AsRef<str>,
{
    assert!(max_columns >= 1, "at least one column required");
    // Build the co-occurrence graph.
    let mut neighbors: HashMap<String, HashSet<String>> = HashMap::new();
    for list in lists {
        let labels: Vec<&str> = list.iter().map(|s| s.as_ref()).collect();
        for (i, a) in labels.iter().enumerate() {
            neighbors.entry((*a).to_string()).or_default();
            for b in &labels[i + 1..] {
                if a == b {
                    continue;
                }
                neighbors
                    .entry((*a).to_string())
                    .or_default()
                    .insert((*b).to_string());
                neighbors
                    .entry((*b).to_string())
                    .or_default()
                    .insert((*a).to_string());
            }
        }
    }

    // Largest degree first, ties broken lexicographically for determinism.
    let mut order: Vec<&String> = neighbors.keys().collect();
    order.sort_by(|a, b| {
        neighbors[*b]
            .len()
            .cmp(&neighbors[*a].len())
            .then_with(|| a.cmp(b))
    });

    let mut assignment: HashMap<String, usize> = HashMap::new();
    let mut used_colors = 0usize;
    for label in order {
        let mut conflicts = vec![0usize; max_columns];
        let mut taken = vec![false; max_columns];
        for n in &neighbors[label] {
            if let Some(&c) = assignment.get(n) {
                taken[c] = true;
                conflicts[c] += 1;
            }
        }
        // Smallest conflict-free color, bounded by max_columns; otherwise
        // the least-conflicting color.
        let color = match taken.iter().position(|t| !t) {
            Some(free) => free,
            None => conflicts
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap_or(0),
        };
        used_colors = used_colors.max(color + 1);
        assignment.insert(label.clone(), color);
    }

    ColorMap {
        assignment,
        columns: used_colors.max(1),
        max_columns,
    }
}

/// The complete physical layout of a store: independent colorings for the
/// outgoing and incoming adjacency tables (the paper's Table 3 reports
/// separate bucket statistics for each) plus the configured table widths.
#[derive(Debug, Clone, Default)]
pub struct GraphLayout {
    /// Coloring for `OPA`.
    pub out: ColorMap,
    /// Coloring for `IPA`.
    pub incoming: ColorMap,
    /// `OPA` column-triad count.
    pub out_buckets: usize,
    /// `IPA` column-triad count.
    pub in_buckets: usize,
}

impl GraphLayout {
    /// A trivial layout (single-label hashing) for stores built
    /// incrementally rather than bulk-loaded.
    pub fn trivial(out_buckets: usize, in_buckets: usize) -> GraphLayout {
        GraphLayout {
            out: ColorMap::hashed(out_buckets),
            incoming: ColorMap::hashed(in_buckets),
            out_buckets,
            in_buckets,
        }
    }

    /// Column of `label` in `OPA`, clamped to the table width.
    pub fn out_column(&self, label: &str) -> usize {
        self.out.column(label) % self.out_buckets.max(1)
    }

    /// Column of `label` in `IPA`, clamped to the table width.
    pub fn in_column(&self, label: &str) -> usize {
        self.incoming.column(label) % self.in_buckets.max(1)
    }
}

/// Statistics about a layout against a dataset — the rows of the paper's
/// Table 3.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutStats {
    /// Distinct labels assigned ("No. of Hashed Labels").
    pub hashed_labels: usize,
    /// Largest number of labels sharing one column ("Hashed Bucket Size").
    pub max_bucket_size: usize,
    /// Rows that spilled because two co-occurring labels share a column.
    pub spill_rows: usize,
    /// Non-spill rows.
    pub primary_rows: usize,
    /// Rows in the multi-value overflow table.
    pub multi_value_rows: usize,
    /// Rows in the long-string overflow table (attribute layouts only).
    pub long_string_rows: usize,
}

impl LayoutStats {
    /// Spill percentage (matches Table 3's "Spill Rows Percentage").
    pub fn spill_percent(&self) -> f64 {
        let total = self.spill_rows + self.primary_rows;
        if total == 0 {
            0.0
        } else {
            100.0 * self.spill_rows as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lists(data: &[&[&str]]) -> Vec<Vec<String>> {
        data.iter()
            .map(|l| l.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn cooccurring_labels_get_distinct_columns() {
        // From Figure 2: knows/created co-occur, likes/created co-occur —
        // knows and likes may share a column, created must differ from both.
        let cm = color_labels(lists(&[&["knows", "created"], &["likes", "created"]]), 4);
        assert_ne!(cm.column("knows"), cm.column("created"));
        assert_ne!(cm.column("likes"), cm.column("created"));
        assert!(cm.columns() <= 2);
    }

    #[test]
    fn independent_labels_share_columns() {
        let cm = color_labels(lists(&[&["a"], &["b"], &["c"], &["d"]]), 4);
        // No co-occurrence at all: everything can share column 0.
        assert_eq!(cm.columns(), 1);
        for l in ["a", "b", "c", "d"] {
            assert_eq!(cm.column(l), 0);
        }
    }

    #[test]
    fn clique_needs_as_many_colors_as_members() {
        let cm = color_labels(lists(&[&["a", "b", "c"]]), 8);
        let cols: HashSet<usize> = ["a", "b", "c"].iter().map(|l| cm.column(l)).collect();
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn budget_overflow_picks_least_conflicting() {
        // A 4-clique with only 2 columns: conflicts are unavoidable but the
        // assignment must stay within bounds.
        let cm = color_labels(lists(&[&["a", "b", "c", "d"]]), 2);
        for l in ["a", "b", "c", "d"] {
            assert!(cm.column(l) < 2);
        }
        assert_eq!(cm.columns(), 2);
    }

    #[test]
    fn unknown_labels_hash_deterministically() {
        let cm = color_labels(lists(&[&["a", "b"]]), 4);
        let c1 = cm.column("never-seen");
        let c2 = cm.column("never-seen");
        assert_eq!(c1, c2);
        assert!(c1 < cm.columns());
        assert!(!cm.contains("never-seen"));
    }

    #[test]
    fn deterministic_across_runs() {
        let data = lists(&[&["a", "b", "c"], &["b", "d"], &["c", "d", "e"], &["e", "a"]]);
        let cm1 = color_labels(data.clone(), 4);
        let cm2 = color_labels(data, 4);
        for l in ["a", "b", "c", "d", "e"] {
            assert_eq!(cm1.column(l), cm2.column(l));
        }
    }

    #[test]
    fn bucket_sizes_sum_to_label_count() {
        let cm = color_labels(lists(&[&["a", "b"], &["c"], &["d", "e", "f"]]), 3);
        assert_eq!(cm.bucket_sizes().iter().sum::<usize>(), cm.labels());
    }

    #[test]
    fn spill_percent_math() {
        let stats = LayoutStats {
            primary_rows: 97,
            spill_rows: 3,
            ..LayoutStats::default()
        };
        assert!((stats.spill_percent() - 3.0).abs() < 1e-9);
        assert_eq!(LayoutStats::default().spill_percent(), 0.0);
    }
}
