//! # sqlgraph-core — the SQLGraph property graph store
//!
//! Rust reproduction of the primary contribution of *"SQLGraph: An
//! Efficient Relational-Based Property Graph Store"* (SIGMOD 2015):
//!
//! * the hybrid physical schema — relational hash tables (`OPA`/`OSA`/
//!   `IPA`/`ISA`) for adjacency, JSON documents (`VA`/`EA`) for vertex and
//!   edge attributes, with `EA` doubling as a redundant triple table
//!   ([`schema`]),
//! * edge-label → column assignment by graph coloring of the label
//!   co-occurrence graph ([`layout`]),
//! * compilation of side-effect-free Gremlin pipelines into a **single**
//!   SQL statement of chained CTEs ([`translate`]), with an interpreter
//!   fallback for dynamic loops (the paper's stored-procedure path),
//! * transactional graph updates including the negative-ID vertex deletion
//!   optimization and offline [`SqlGraph::vacuum`] (§4.5.2).
//!
//! # Quickstart
//!
//! ```
//! use sqlgraph_core::SqlGraph;
//!
//! let g = SqlGraph::new_in_memory();
//! let marko = g.add_vertex([("name", "marko".into()), ("age", 29i64.into())]).unwrap();
//! let vadas = g.add_vertex([("name", "vadas".into()), ("age", 27i64.into())]).unwrap();
//! g.add_edge(marko, vadas, "knows", [("weight", 0.5f64.into())]).unwrap();
//!
//! // One Gremlin query → one SQL statement.
//! let out = g.query("g.V.has('name','marko').out('knows').values('name')").unwrap();
//! assert_eq!(out.strings(), ["vadas"]);
//! ```

pub mod alt;
pub mod layout;
pub mod schema;
pub mod shard;
pub mod store;
pub mod translate;

// The rel executor now runs morsel workers inside queries, and the bench
// harness drives one `SqlGraph` from many client threads — the store's
// read paths must be `Sync`-clean. Enforced at compile time so a stray
// `Rc`/`RefCell` fails here, not in a race.
const _: () = {
    const fn sync_clean<T: Send + Sync>() {}
    sync_clean::<store::SqlGraph>();
    sync_clean::<store::GraphData>();
    sync_clean::<shard::ShardedGraph>();
};

pub use layout::{color_labels, ColorMap, GraphLayout, LayoutStats};
pub use schema::{deleted_id, SchemaConfig, MV_BASE};
pub use shard::{shard_of, ShardedGraph};
pub use store::{props_to_json, value_to_json, GraphData, GraphTxn, SqlGraph};
pub use translate::{translate, translate_with, AdjacencyStrategy, TranslateOptions, Unsupported};

use sqlgraph_gremlin::{GraphError, GremlinError};
use sqlgraph_rel::Error as RelError;

/// Errors from the SQLGraph store.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Relational engine error.
    Rel(RelError),
    /// Gremlin lex/parse error.
    Gremlin(GremlinError),
    /// Property graph operation error.
    Graph(GraphError),
    /// A query outside the translatable subset where no fallback applies.
    Unsupported(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Rel(e) => write!(f, "{e}"),
            CoreError::Gremlin(e) => write!(f, "{e}"),
            CoreError::Graph(e) => write!(f, "{e}"),
            CoreError::Unsupported(r) => write!(f, "unsupported: {r}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<RelError> for CoreError {
    fn from(e: RelError) -> Self {
        CoreError::Rel(e)
    }
}

impl From<GremlinError> for CoreError {
    fn from(e: GremlinError) -> Self {
        CoreError::Gremlin(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}
