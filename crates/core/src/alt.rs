//! Alternative physical schemas used by the paper's micro-benchmarks
//! (§3.2/§3.3): the roads *not* taken by the final design.
//!
//! * [`JsonAdjacency`] — adjacency stored as one JSON document per vertex
//!   (Figure 2c). Traversals unnest the document with the engine's lateral
//!   `TABLE(JSON_EDGES(...))` function. Figure 3 compares this against the
//!   hash-table shredding and finds it ~5× slower for traversal.
//! * [`ShreddedAttrs`] — vertex attributes shredded into a relational hash
//!   table by coloring attribute keys (Figure 2d), with the long-string and
//!   multi-value overflow tables whose row counts appear in Table 3.
//!   Figure 4 compares this against the JSON attribute table and finds JSON
//!   faster for value lookups (casts and overflow joins disappear).

use crate::layout::{color_labels, ColorMap, LayoutStats};
use crate::store::GraphData;
use sqlgraph_json::Json;
use sqlgraph_rel::{Database, Relation, Result, Value};
use std::collections::BTreeMap;

/// Per-vertex adjacency grouped by label: vid → label → [(eid, other)].
type AdjacencyMap<'a> = BTreeMap<i64, BTreeMap<&'a str, Vec<(i64, i64)>>>;

/// Strings longer than this spill into the long-string table, mirroring the
/// paper's observation that DBpedia attribute values often exceed row-width
/// budgets.
pub const LONG_STRING_LIMIT: usize = 64;

// ---------------------------------------------------------------------------
// JSON adjacency (Figure 2c)
// ---------------------------------------------------------------------------

/// Adjacency-as-JSON storage: `jout(vid, edges)` / `jin(vid, edges)` with
/// `edges = {"label": [{"eid": e, "val": v}, ...], ...}`.
#[derive(Debug)]
pub struct JsonAdjacency {
    db: Database,
}

impl JsonAdjacency {
    /// Create the two tables in a fresh database.
    pub fn new() -> Result<JsonAdjacency> {
        let db = Database::new();
        // Documents are stored serialized (TEXT): 2015-era engines held
        // JSON columns as serialized BSON/VARCHAR, so adjacency access pays
        // a per-row decode — the cost Figure 3 measures.
        db.execute("CREATE TABLE jout (vid INTEGER PRIMARY KEY, edges TEXT)")?;
        db.execute("CREATE TABLE jin (vid INTEGER PRIMARY KEY, edges TEXT)")?;
        db.execute("CREATE TABLE va (vid INTEGER PRIMARY KEY, attr JSON)")?;
        Ok(JsonAdjacency { db })
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Load a graph: one adjacency document per vertex per direction.
    pub fn load(&self, data: &GraphData) -> Result<()> {
        let mut out_adj: AdjacencyMap<'_> = AdjacencyMap::new();
        let mut in_adj: AdjacencyMap<'_> = AdjacencyMap::new();
        for (eid, src, dst, label, _) in &data.edges {
            out_adj
                .entry(*src)
                .or_default()
                .entry(label)
                .or_default()
                .push((*eid, *dst));
            in_adj
                .entry(*dst)
                .or_default()
                .entry(label)
                .or_default()
                .push((*eid, *src));
        }
        for (table, adj) in [("jout", &out_adj), ("jin", &in_adj)] {
            let mut t = self.db.write_table(table)?;
            for (vid, labels) in adj {
                let mut doc = sqlgraph_json::JsonObject::new();
                for (label, entries) in labels {
                    let items: Vec<Json> = entries
                        .iter()
                        .map(|(eid, val)| {
                            let mut o = sqlgraph_json::JsonObject::new();
                            o.insert("eid", Json::int(*eid));
                            o.insert("val", Json::int(*val));
                            Json::Object(o)
                        })
                        .collect();
                    doc.insert(label.to_string(), Json::Array(items));
                }
                t.insert(vec![
                    Value::Int(*vid),
                    Value::str(Json::Object(doc).to_string()),
                ])?;
            }
        }
        {
            let mut va = self.db.write_table("va")?;
            for (vid, props) in &data.vertices {
                va.insert(vec![
                    Value::Int(*vid),
                    Value::json(crate::store::props_to_json(props)),
                ])?;
            }
        }
        Ok(())
    }

    /// SQL for a k-hop traversal from the vertices matched by
    /// `seed_filter` (a WHERE condition over `va`, e.g.
    /// `JSON_VAL(attr, 'kind') = 'place'`), following `label` edges
    /// (`None` = all labels), counting the result. `both` traverses each
    /// hop in both directions (the paper's `team` queries).
    pub fn khop_sql(
        &self,
        seed_filter: &str,
        label: Option<&str>,
        hops: usize,
        both: bool,
    ) -> String {
        let mut sql = format!("WITH t0 AS (SELECT vid AS val FROM va WHERE {seed_filter})");
        let label_arg = match label {
            Some(l) => format!(", '{}'", l.replace('\'', "''")),
            None => String::new(),
        };
        let mut counter = 0usize;
        let mut prev = "t0".to_string();
        for _ in 1..=hops {
            if both {
                counter += 1;
                let a = format!("t{counter}");
                sql.push_str(&format!(
                    ", {a} AS (SELECT t.val AS val FROM {prev} v, jout p, \
                     TABLE(JSON_EDGES(p.edges{label_arg})) AS t(lbl, eid, val) \
                     WHERE v.val = p.vid)"
                ));
                counter += 1;
                let b = format!("t{counter}");
                sql.push_str(&format!(
                    ", {b} AS (SELECT t.val AS val FROM {prev} v, jin p, \
                     TABLE(JSON_EDGES(p.edges{label_arg})) AS t(lbl, eid, val) \
                     WHERE v.val = p.vid)"
                ));
                counter += 1;
                let u = format!("t{counter}");
                sql.push_str(&format!(
                    ", {u} AS (SELECT * FROM {a} UNION ALL SELECT * FROM {b})"
                ));
                prev = u;
            } else {
                counter += 1;
                let next = format!("t{counter}");
                sql.push_str(&format!(
                    ", {next} AS (SELECT t.val AS val FROM {prev} v, jout p, \
                     TABLE(JSON_EDGES(p.edges{label_arg})) AS t(lbl, eid, val) \
                     WHERE v.val = p.vid)"
                ));
                prev = next;
            }
        }
        sql.push_str(&format!(" SELECT COUNT(*) FROM {prev}"));
        sql
    }

    /// Run a k-hop count query.
    pub fn khop(&self, seed_filter: &str, label: Option<&str>, hops: usize) -> Result<Relation> {
        self.db
            .execute(&self.khop_sql(seed_filter, label, hops, false))
    }

    /// Run a k-hop count query traversing both directions per hop.
    pub fn khop_both(
        &self,
        seed_filter: &str,
        label: Option<&str>,
        hops: usize,
    ) -> Result<Relation> {
        self.db
            .execute(&self.khop_sql(seed_filter, label, hops, true))
    }
}

// ---------------------------------------------------------------------------
// Shredded relational attributes (Figure 2d)
// ---------------------------------------------------------------------------

/// Vertex attributes shredded into a colored hash table:
/// `vah(rowno, vid, spill, attr0, type0, val0, …)` plus the `lst`
/// (long-string) and `mvt` (multi-value) overflow tables.
#[derive(Debug)]
pub struct ShreddedAttrs {
    db: Database,
    colors: ColorMap,
    buckets: usize,
    stats: LayoutStats,
}

impl ShreddedAttrs {
    /// Shred `vertices` into a fresh database with `buckets` column triads.
    pub fn build(vertices: &[crate::store::VertexSpec], buckets: usize) -> Result<ShreddedAttrs> {
        let db = Database::new();
        let mut cols = String::from("rowno INTEGER, vid INTEGER, spill INTEGER");
        for i in 0..buckets {
            cols.push_str(&format!(", attr{i} TEXT, type{i} TEXT, val{i} TEXT"));
        }
        db.execute(&format!("CREATE TABLE vah ({cols})"))?;
        db.execute("CREATE INDEX vah_vid ON vah (vid) USING HASH")?;
        // Per-bucket lookup indexes (the paper indexed queried keys for
        // both storage layouts). Note numeric lookups still cannot use
        // these: the stored value is TEXT, so the CAST defeats the index —
        // exactly the shredded layout's disadvantage.
        for i in 0..buckets {
            db.execute(&format!(
                "CREATE INDEX vah_attr{i} ON vah (attr{i}) USING HASH"
            ))?;
            db.execute(&format!(
                "CREATE INDEX vah_attr{i}_val{i} ON vah (attr{i}, val{i}) USING HASH"
            ))?;
        }
        db.execute("CREATE TABLE lst (ref TEXT PRIMARY KEY, txt TEXT)")?;
        db.execute("CREATE TABLE mvt (mvref TEXT, typ TEXT, val TEXT)")?;
        db.execute("CREATE INDEX mvt_ref ON mvt (mvref) USING HASH")?;
        db.execute("CREATE INDEX mvt_val ON mvt (val) USING HASH")?;

        // Color attribute keys by co-occurrence, exactly like edge labels.
        let key_lists = vertices
            .iter()
            .map(|(_, props)| props.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>());
        let colors = color_labels(key_lists, buckets);

        let mut stats = LayoutStats {
            hashed_labels: colors.labels(),
            max_bucket_size: colors.bucket_sizes().into_iter().max().unwrap_or(0),
            ..LayoutStats::default()
        };

        let mut next_rowno = 1i64;
        let mut next_ref = 1i64;
        {
            let mut vah = db.write_table("vah")?;
            let mut lst = db.write_table("lst")?;
            let mut mvt = db.write_table("mvt")?;
            let arity = 3 + 3 * buckets;
            for (vid, props) in vertices {
                let mut rows: Vec<Vec<Value>> = vec![new_row(arity, next_rowno, *vid, false)];
                next_rowno += 1;
                for (key, value) in props {
                    let col = colors.column(key) % buckets;
                    let (a_i, t_i, v_i) = (3 + 3 * col, 4 + 3 * col, 5 + 3 * col);
                    let row_idx = match rows.iter().position(|r| r[a_i].is_null()) {
                        Some(i) => i,
                        None => {
                            rows.push(new_row(arity, next_rowno, *vid, true));
                            next_rowno += 1;
                            rows.len() - 1
                        }
                    };
                    let (ty, rendered) = render_attr(value);
                    let stored: Value = match value {
                        Json::Array(items) => {
                            // Multi-valued attribute → overflow rows.
                            let mvref = format!("@mv:{next_ref}");
                            next_ref += 1;
                            for item in items {
                                let (ity, irep) = render_attr(item);
                                mvt.insert(vec![
                                    Value::str(&mvref),
                                    Value::str(ity),
                                    Value::str(irep),
                                ])?;
                                stats.multi_value_rows += 1;
                            }
                            Value::str(&mvref)
                        }
                        Json::Str(s) if s.len() > LONG_STRING_LIMIT => {
                            let sref = format!("@lst:{next_ref}");
                            next_ref += 1;
                            lst.insert(vec![Value::str(&sref), Value::str(s)])?;
                            stats.long_string_rows += 1;
                            Value::str(&sref)
                        }
                        _ => Value::str(rendered),
                    };
                    let row = &mut rows[row_idx];
                    row[a_i] = Value::str(key);
                    row[t_i] = Value::str(ty);
                    row[v_i] = stored;
                }
                stats.primary_rows += 1;
                stats.spill_rows += rows.len() - 1;
                for row in rows {
                    vah.insert(row)?;
                }
            }
        }
        Ok(ShreddedAttrs {
            db,
            colors,
            buckets,
            stats,
        })
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Layout statistics (Table 3 rows for the attribute hash table).
    pub fn stats(&self) -> &LayoutStats {
        &self.stats
    }

    /// Count vertices where `key` exists — the `not null` queries of
    /// Table 2.
    pub fn count_not_null_sql(&self, key: &str) -> String {
        let c = self.colors.column(key) % self.buckets;
        format!(
            "SELECT COUNT(*) FROM vah WHERE attr{c} = '{}'",
            key.replace('\'', "''")
        )
    }

    /// Count vertices where `key`'s value matches `LIKE pattern` — handles
    /// long-string indirection with an outer join, as the paper describes.
    pub fn count_like_sql(&self, key: &str, pattern: &str) -> String {
        let c = self.colors.column(key) % self.buckets;
        format!(
            "SELECT COUNT(*) FROM vah p LEFT OUTER JOIN lst s ON p.val{c} = s.ref \
             WHERE p.attr{c} = '{key_esc}' AND COALESCE(s.txt, p.val{c}) LIKE '{pat}'",
            key_esc = key.replace('\'', "''"),
            pat = pattern.replace('\'', "''"),
        )
    }

    /// Count vertices where `key = value` numerically — requires the CAST
    /// the paper calls out, plus the multi-value subquery.
    pub fn count_numeric_eq_sql(&self, key: &str, value: f64) -> String {
        let c = self.colors.column(key) % self.buckets;
        format!(
            "SELECT COUNT(*) FROM vah p WHERE p.attr{c} = '{key_esc}' AND \
             ((p.type{c} <> 'STRING' AND CAST(p.val{c} AS DOUBLE) = {value}) OR \
              p.val{c} IN (SELECT mvref FROM mvt WHERE val = '{value}'))",
            key_esc = key.replace('\'', "''"),
        )
    }

    /// Count vertices where `key = value` as a string (multi-value aware).
    pub fn count_string_eq_sql(&self, key: &str, value: &str) -> String {
        let c = self.colors.column(key) % self.buckets;
        let v = value.replace('\'', "''");
        format!(
            "SELECT COUNT(*) FROM vah p WHERE p.attr{c} = '{key_esc}' AND \
             (p.val{c} = '{v}' OR p.val{c} IN (SELECT mvref FROM mvt WHERE val = '{v}'))",
            key_esc = key.replace('\'', "''"),
        )
    }

    /// Execute one of the generated queries.
    pub fn run(&self, sql: &str) -> Result<Relation> {
        self.db.execute(sql)
    }
}

fn new_row(arity: usize, rowno: i64, vid: i64, spill: bool) -> Vec<Value> {
    let mut row = vec![Value::Null; arity];
    row[0] = Value::Int(rowno);
    row[1] = Value::Int(vid);
    row[2] = Value::Int(spill as i64);
    row
}

/// Render an attribute value for TEXT storage with its declared type.
fn render_attr(value: &Json) -> (&'static str, String) {
    match value {
        Json::Num(n) if n.is_int() => ("INTEGER", n.to_string()),
        Json::Num(n) => ("DOUBLE", n.to_string()),
        Json::Bool(b) => ("BOOLEAN", b.to_string()),
        Json::Null => ("NULL", "null".into()),
        Json::Str(s) => ("STRING", s.clone()),
        other => ("JSON", other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> GraphData {
        GraphData {
            vertices: vec![
                (
                    1,
                    vec![("name".into(), "a".into()), ("age".into(), Json::int(10))],
                ),
                (
                    2,
                    vec![("name".into(), "b".into()), ("age".into(), Json::int(20))],
                ),
                (3, vec![("name".into(), "c".into())]),
            ],
            edges: vec![
                (1, 1, 2, "next".into(), vec![]),
                (2, 2, 3, "next".into(), vec![]),
                (3, 1, 3, "skip".into(), vec![]),
            ],
        }
    }

    #[test]
    fn json_adjacency_khop() {
        let ja = JsonAdjacency::new().unwrap();
        ja.load(&graph()).unwrap();
        let rel = ja.khop("vid = 1", Some("next"), 2).unwrap();
        assert_eq!(rel.scalar().and_then(Value::as_int), Some(1)); // 1→2→3
        let rel = ja.khop("vid = 1", None, 1).unwrap();
        assert_eq!(rel.scalar().and_then(Value::as_int), Some(2)); // 2 and 3
        let rel = ja
            .khop("JSON_VAL(attr, 'name') = 'a'", Some("next"), 1)
            .unwrap();
        assert_eq!(rel.scalar().and_then(Value::as_int), Some(1));
    }

    #[test]
    fn shredded_attrs_lookups() {
        let long = "x".repeat(LONG_STRING_LIMIT + 10) + "@en";
        let vertices: Vec<(i64, Vec<(String, Json)>)> = vec![
            (
                1,
                vec![
                    ("label".into(), Json::str("short@en")),
                    ("pop".into(), Json::float(12.5)),
                ],
            ),
            (
                2,
                vec![
                    ("label".into(), Json::str(long)),
                    ("pop".into(), Json::int(7)),
                ],
            ),
            (
                3,
                vec![
                    ("label".into(), Json::str("plain")),
                    (
                        "alias".into(),
                        Json::Array(vec![Json::str("x"), Json::str("y")]),
                    ),
                ],
            ),
        ];
        let sh = ShreddedAttrs::build(&vertices, 4).unwrap();
        // Existence.
        let n = sh.run(&sh.count_not_null_sql("label")).unwrap();
        assert_eq!(n.scalar().and_then(Value::as_int), Some(3));
        let n = sh.run(&sh.count_not_null_sql("pop")).unwrap();
        assert_eq!(n.scalar().and_then(Value::as_int), Some(2));
        // LIKE across the long-string table.
        let n = sh.run(&sh.count_like_sql("label", "%@en")).unwrap();
        assert_eq!(n.scalar().and_then(Value::as_int), Some(2));
        // Numeric equality with cast.
        let n = sh.run(&sh.count_numeric_eq_sql("pop", 12.5)).unwrap();
        assert_eq!(n.scalar().and_then(Value::as_int), Some(1));
        // Multi-value membership.
        let n = sh.run(&sh.count_string_eq_sql("alias", "y")).unwrap();
        assert_eq!(n.scalar().and_then(Value::as_int), Some(1));
        // Stats counted the overflow rows.
        assert_eq!(sh.stats().long_string_rows, 1);
        assert_eq!(sh.stats().multi_value_rows, 2);
        assert_eq!(sh.stats().primary_rows, 3);
    }

    #[test]
    fn shredded_attrs_spill_when_narrow() {
        let vertices: Vec<(i64, Vec<(String, Json)>)> = vec![(
            1,
            vec![
                ("a".into(), Json::int(1)),
                ("b".into(), Json::int(2)),
                ("c".into(), Json::int(3)),
            ],
        )];
        let sh = ShreddedAttrs::build(&vertices, 2).unwrap();
        assert!(sh.stats().spill_rows >= 1);
        // All three keys still findable.
        for key in ["a", "b", "c"] {
            let n = sh.run(&sh.count_not_null_sql(key)).unwrap();
            assert_eq!(n.scalar().and_then(Value::as_int), Some(1), "key {key}");
        }
    }
}
