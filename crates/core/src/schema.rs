//! The SQLGraph physical schema (Figure 5 of the paper).
//!
//! Six tables:
//!
//! * `OPA(vid, spill, lbl0, eid0, val0, …)` — outgoing primary adjacency:
//!   one row per vertex (plus spill rows), edge labels hashed to column
//!   triads by the coloring layout. For a single-valued label the triad
//!   stores `(label, edge id, target vertex)`. For a multi-valued label the
//!   `eid` is NULL and `val` holds a *list id* (`>= MV_BASE`) pointing into
//!   `OSA`.
//! * `OSA(valid, eid, val)` — outgoing secondary adjacency: the overflow
//!   rows for multi-valued labels.
//! * `IPA` / `ISA` — the same for incoming adjacency.
//! * `VA(vid, attr)` — vertex attributes as one JSON document per vertex.
//! * `EA(eid, inv, outv, lbl, attr)` — edge attributes as JSON plus a
//!   redundant copy of the adjacency triple (§3.5): `inv` is the edge's
//!   source and `outv` its target, matching the sample data in Figure 5(f)
//!   (edge 7: `INV 1, OUTV 2` for marko→vadas).
//!
//! Indexes follow §3.4: primary keys on `VA.vid` / `EA.eid`, indexes on the
//! adjacency `vid`/`valid` columns, combined `(inv, lbl)` and `(outv, lbl)`
//! indexes on `EA` (the SP/OP analogue), and single-column `inv`/`outv`
//! indexes for unlabeled hops.

use sqlgraph_rel::{Database, Result};

/// Multi-value list ids live at and above this base so they can never
/// collide with vertex ids (the paper relies on the same disjointness for
/// its `COALESCE(s.val, p.val)` templates).
pub const MV_BASE: i64 = 1_000_000_000_000;

/// Marker for deleted ids (§4.5.2): `vid := -vid - 1`.
pub fn deleted_id(id: i64) -> i64 {
    -id - 1
}

/// Physical layout parameters: how many column triads each adjacency table
/// has. The paper derives these from the coloring (Table 3 reports 106/125/
/// 19 bucket sizes over 13K-53K labels); we keep them explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemaConfig {
    /// Column triads in `OPA`.
    pub out_buckets: usize,
    /// Column triads in `IPA`.
    pub in_buckets: usize,
}

impl Default for SchemaConfig {
    fn default() -> Self {
        SchemaConfig {
            out_buckets: 8,
            in_buckets: 8,
        }
    }
}

impl SchemaConfig {
    /// Validate bucket counts.
    pub fn validate(&self) -> Result<()> {
        if self.out_buckets == 0 || self.in_buckets == 0 {
            return Err(sqlgraph_rel::Error::Invalid(
                "bucket counts must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Column-triad names of an adjacency table with `buckets` triads.
pub fn triad_columns(buckets: usize) -> impl Iterator<Item = (String, String, String)> {
    (0..buckets).map(|i| (format!("lbl{i}"), format!("eid{i}"), format!("val{i}")))
}

/// Create the six SQLGraph tables and their indexes.
pub fn create_tables(db: &Database, config: &SchemaConfig) -> Result<()> {
    config.validate()?;
    for (prefix, buckets) in [("o", config.out_buckets), ("i", config.in_buckets)] {
        // Primary adjacency. `rowno` is a hidden per-row identity used by
        // the update procedures to target one specific (possibly spill) row.
        let mut cols = String::from("rowno INTEGER, vid INTEGER, spill INTEGER");
        for (lbl, eid, val) in triad_columns(buckets) {
            cols.push_str(&format!(", {lbl} TEXT, {eid} INTEGER, {val} INTEGER"));
        }
        db.execute(&format!("CREATE TABLE {prefix}pa ({cols})"))?;
        db.execute(&format!(
            "CREATE UNIQUE INDEX {prefix}pa_rowno ON {prefix}pa (rowno) USING HASH"
        ))?;
        db.execute(&format!(
            "CREATE INDEX {prefix}pa_vid ON {prefix}pa (vid) USING HASH"
        ))?;
        // Secondary adjacency.
        db.execute(&format!(
            "CREATE TABLE {prefix}sa (valid INTEGER, eid INTEGER, val INTEGER)"
        ))?;
        db.execute(&format!(
            "CREATE INDEX {prefix}sa_valid ON {prefix}sa (valid) USING HASH"
        ))?;
        db.execute(&format!(
            "CREATE INDEX {prefix}sa_valid_val ON {prefix}sa (valid, val) USING HASH"
        ))?;
    }
    db.execute("CREATE TABLE va (vid INTEGER PRIMARY KEY, attr JSON)")?;
    db.execute(
        "CREATE TABLE ea (eid INTEGER PRIMARY KEY, inv INTEGER, outv INTEGER, lbl TEXT, attr JSON)",
    )?;
    db.execute("CREATE INDEX ea_inv_lbl ON ea (inv, lbl) USING HASH")?;
    db.execute("CREATE INDEX ea_outv_lbl ON ea (outv, lbl) USING HASH")?;
    db.execute("CREATE INDEX ea_inv ON ea (inv) USING HASH")?;
    db.execute("CREATE INDEX ea_outv ON ea (outv) USING HASH")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_all_tables() {
        let db = Database::new();
        create_tables(&db, &SchemaConfig::default()).unwrap();
        let names = db.table_names();
        for t in ["opa", "osa", "ipa", "isa", "va", "ea"] {
            assert!(names.contains(&t.to_string()), "missing {t}");
        }
        // OPA has rowno + vid + spill + 3*8 triad columns by default.
        let rel = db.execute("SELECT * FROM opa").unwrap();
        assert_eq!(rel.columns.len(), 3 + 3 * 8);
    }

    #[test]
    fn custom_bucket_counts() {
        let db = Database::new();
        create_tables(
            &db,
            &SchemaConfig {
                out_buckets: 3,
                in_buckets: 5,
            },
        )
        .unwrap();
        assert_eq!(
            db.execute("SELECT * FROM opa").unwrap().columns.len(),
            3 + 9
        );
        assert_eq!(
            db.execute("SELECT * FROM ipa").unwrap().columns.len(),
            3 + 15
        );
    }

    #[test]
    fn zero_buckets_rejected() {
        let db = Database::new();
        assert!(create_tables(
            &db,
            &SchemaConfig {
                out_buckets: 0,
                in_buckets: 1
            }
        )
        .is_err());
    }

    #[test]
    fn deleted_id_is_involution() {
        for id in [0, 1, 7, 1_000_000] {
            let d = deleted_id(id);
            assert!(d < 0);
            assert_eq!(deleted_id(d), id);
        }
    }
}
