//! Gremlin → SQL translation (§4 and Table 8 of the paper).
//!
//! A side-effect-free pipeline compiles into **one** SQL statement: a chain
//! of CTEs, each the translation `[e]` of one pipe, threaded through a
//! mandatory `val` column and (when any pipe needs history) a `path` array
//! column — the `[e]p` variants of the paper. The relational engine then
//! executes the whole traversal in a single set-oriented pass.
//!
//! Key template choices, following §3.5 and §4.5:
//! * A traversal whose *only* adjacency step is a single `out`/`in`/`both`
//!   uses the redundant `EA` triple table (Table 4 shows it wins for
//!   selective lookups); multi-step traversals join the `OPA`/`OSA`
//!   (`IPA`/`ISA`) hash tables, which win for long paths (Figure 6).
//! * `g.V` followed by attribute filters merges into the start scan — the
//!   GraphQuery rewrite.
//! * Fixed-depth `loop` pipes unroll into repeated CTE segments; dynamic
//!   loops are reported as [`Unsupported`] and the store falls back to the
//!   interpreter (the paper's stored-procedure fallback).
//! * Every generated vertex scan carries the `vid >= 0` deletion guard.

use crate::layout::GraphLayout;
use sqlgraph_gremlin::ast::{BackTarget, Closure, Cmp, Pipe, Pipeline};
use sqlgraph_json::Json;
use std::collections::HashMap;
use std::fmt::Write;

/// Why a pipeline could not be translated (→ interpreter fallback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported {
    /// Reason, for logs and tests.
    pub reason: String,
}

impl Unsupported {
    fn new(reason: impl Into<String>) -> Unsupported {
        Unsupported {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not translatable to SQL: {}", self.reason)
    }
}

/// Physical strategy for adjacency steps (Table 4 / Figure 6 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdjacencyStrategy {
    /// The paper's rule: EA for a single-step lookup, hash tables otherwise.
    #[default]
    Auto,
    /// Always join OPA/OSA (IPA/ISA) — the Figure 6 "OPA+OSA" arm.
    ForceHash,
    /// Always probe the EA triple table — the Figure 6 "EA" arm.
    ForceEa,
}

/// Translation options.
#[derive(Debug, Clone, Copy)]
pub struct TranslateOptions {
    /// Which physical tables serve `out`/`in`/`both`.
    pub adjacency: AdjacencyStrategy,
    /// Rewrite trailing multi-hop counting traversals into multiplicity
    /// (factorized) form: the frontier is compressed to distinct vertices
    /// with a path-count column after every hop, so intermediate
    /// cardinality is bounded by the vertex count instead of the path
    /// count. Counts are unchanged; disable to force one-row-per-path
    /// execution (the Figure 6 row templates).
    pub factorize: bool,
}

impl Default for TranslateOptions {
    fn default() -> TranslateOptions {
        TranslateOptions {
            adjacency: AdjacencyStrategy::default(),
            factorize: true,
        }
    }
}

/// What kind of element flows out of a pipe (resolves `has`/`values` to the
/// right attribute table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Vertex,
    Edge,
    Value,
}

struct Ctx<'a> {
    layout: &'a GraphLayout,
    ctes: Vec<(String, String)>,
    /// Current result table.
    cur: String,
    kind: Kind,
    /// Whether CTEs carry a `path` column.
    path: bool,
    /// Transform-step counter (trail length).
    transforms: usize,
    /// `as('name')` → (transforms at mark, kind at mark).
    marks: HashMap<String, (usize, Kind)>,
    /// `aggregate(x)` → CTE holding the bag.
    bags: HashMap<String, String>,
    /// Fresh-name counter (shared with branch translations).
    counter: usize,
    /// Total adjacency steps in the top-level pipeline (for the EA
    /// single-step optimization).
    traversal_steps: usize,
    options: TranslateOptions,
}

impl<'a> Ctx<'a> {
    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("t{}", self.counter)
    }

    fn push_cte(&mut self, sql: String) -> String {
        let name = self.fresh();
        self.ctes.push((name.clone(), sql));
        self.cur = name.clone();
        name
    }

    /// Projection suffix continuing the path column through a transform.
    fn path_step(&self) -> &'static str {
        if self.path {
            ", ARRAY_APPEND(v.path, v.val) AS path"
        } else {
            ""
        }
    }
}

/// Translate a pipeline into a single SQL statement with default options.
pub fn translate(pipeline: &Pipeline, layout: &GraphLayout) -> Result<String, Unsupported> {
    translate_with(pipeline, layout, TranslateOptions::default())
}

/// Translate with explicit physical-strategy options.
pub fn translate_with(
    pipeline: &Pipeline,
    layout: &GraphLayout,
    options: TranslateOptions,
) -> Result<String, Unsupported> {
    let needs_path = pipeline_needs_path(&pipeline.pipes);
    let mut ctx = Ctx {
        layout,
        ctes: Vec::new(),
        cur: String::new(),
        kind: Kind::Vertex,
        path: needs_path,
        transforms: 0,
        marks: HashMap::new(),
        bags: HashMap::new(),
        counter: 0,
        traversal_steps: count_traversal_steps(&pipeline.pipes),
        options,
    };
    // Trailing `.out/.in/.both × k (.dedup)? .count()` runs compress the
    // frontier to (vertex, multiplicity) after every hop — but only when no
    // pipe needs per-path history and the hops use the hash tables.
    let span = if options.factorize
        && !needs_path
        && !matches!(options.adjacency, AdjacencyStrategy::ForceEa)
    {
        multiplicity_span(&pipeline.pipes)
    } else {
        None
    };
    match span {
        Some(start) if start > 0 => {
            translate_pipes(&mut ctx, &pipeline.pipes[..start])?;
            if ctx.kind == Kind::Vertex {
                translate_multiplicity(&mut ctx, &pipeline.pipes[start..])?;
            } else {
                translate_pipes(&mut ctx, &pipeline.pipes[start..])?;
            }
        }
        _ => translate_pipes(&mut ctx, &pipeline.pipes)?,
    }
    if ctx.ctes.is_empty() {
        return Err(Unsupported::new("empty pipeline"));
    }
    let mut sql = String::from("WITH ");
    for (i, (name, body)) in ctx.ctes.iter().enumerate() {
        if i > 0 {
            sql.push_str(", ");
        }
        write!(sql, "{name} AS ({body})").expect("write to string");
    }
    write!(sql, " SELECT val FROM {}", ctx.cur).expect("write to string");
    Ok(sql)
}

fn pipeline_needs_path(pipes: &[Pipe]) -> bool {
    pipes.iter().any(|p| match p {
        Pipe::Path | Pipe::SimplePath | Pipe::Back(_) => true,
        Pipe::CopySplit(branches) => branches.iter().any(|b| pipeline_needs_path(&b.pipes)),
        _ => false,
    })
}

fn count_traversal_steps(pipes: &[Pipe]) -> usize {
    pipes
        .iter()
        .map(|p| match p {
            Pipe::Out(_)
            | Pipe::In(_)
            | Pipe::Both(_)
            | Pipe::OutE(_)
            | Pipe::InE(_)
            | Pipe::BothE(_)
            | Pipe::OutV
            | Pipe::InV
            | Pipe::BothV => 1,
            Pipe::Loop { .. } => 10, // loops always use the hash tables
            Pipe::CopySplit(bs) | Pipe::And(bs) | Pipe::Or(bs) => {
                bs.iter().map(|b| count_traversal_steps(&b.pipes)).sum()
            }
            _ => 0,
        })
        .sum()
}

fn translate_pipes(ctx: &mut Ctx<'_>, pipes: &[Pipe]) -> Result<(), Unsupported> {
    let mut idx = 0;
    while idx < pipes.len() {
        match &pipes[idx] {
            Pipe::Loop { back, cond } => {
                let extra = loop_unroll_count(cond)?;
                let seg_start = match back {
                    BackTarget::Steps(n) => idx
                        .checked_sub(*n)
                        .ok_or_else(|| Unsupported::new("loop rewinds past pipeline start"))?,
                    BackTarget::Named(name) => {
                        let mut found = None;
                        for (i, p) in pipes[..idx].iter().enumerate() {
                            if matches!(p, Pipe::As(n) if n == name) {
                                found = Some(i + 1);
                            }
                        }
                        found.ok_or_else(|| {
                            Unsupported::new(format!("loop target as('{name}') not found"))
                        })?
                    }
                };
                let segment: Vec<Pipe> = pipes[seg_start..idx].to_vec();
                if segment.iter().any(|p| matches!(p, Pipe::Loop { .. })) {
                    return Err(Unsupported::new("nested loops"));
                }
                for _ in 0..extra {
                    translate_pipes(ctx, &segment)?;
                }
            }
            pipe => translate_one(ctx, pipe)?,
        }
        idx += 1;
    }
    Ok(())
}

/// `it.loops < k` → k-1 extra unrolled passes; `it.loops <= k` → k.
fn loop_unroll_count(cond: &Closure) -> Result<usize, Unsupported> {
    if let Closure::Compare(cmp, l, r) = cond {
        if let (Closure::Loops, Closure::Literal(Json::Num(n))) = (l.as_ref(), r.as_ref()) {
            if let Some(k) = n.as_i64() {
                return match cmp {
                    Cmp::Lt if k >= 1 => Ok((k - 1) as usize),
                    Cmp::Lte if k >= 0 => Ok(k as usize),
                    _ => Err(Unsupported::new("loop condition not a static bound")),
                };
            }
        }
    }
    Err(Unsupported::new(
        "dynamic loop condition (stored-procedure fallback)",
    ))
}

pub(crate) fn sql_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

pub(crate) fn sql_json(v: &Json) -> Result<String, Unsupported> {
    Ok(match v {
        Json::Null => "NULL".to_string(),
        Json::Bool(true) => "TRUE".to_string(),
        Json::Bool(false) => "FALSE".to_string(),
        Json::Num(n) => n.to_string(),
        Json::Str(s) => sql_str(s),
        other => return Err(Unsupported::new(format!("non-scalar literal {other}"))),
    })
}

pub(crate) fn label_in_list(column: &str, labels: &[String]) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        let list: Vec<String> = labels.iter().map(|l| sql_str(l)).collect();
        format!(" AND {column} IN ({})", list.join(", "))
    }
}

/// Buckets to unnest for `labels` in the out/in adjacency table.
fn buckets_for(ctx: &Ctx<'_>, labels: &[String], out: bool) -> Vec<usize> {
    let total = if out {
        ctx.layout.out_buckets
    } else {
        ctx.layout.in_buckets
    };
    if labels.is_empty() {
        return (0..total).collect();
    }
    let mut cols: Vec<usize> = labels
        .iter()
        .map(|l| {
            if out {
                ctx.layout.out_column(l)
            } else {
                ctx.layout.in_column(l)
            }
        })
        .collect();
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// The paper's multi-step adjacency template: unnest OPA/IPA triads,
/// left-outer-join the secondary table, COALESCE single vs multi values.
fn adjacency_hash_step(ctx: &mut Ctx<'_>, labels: &[String], out: bool) {
    let (pa, sa) = if out { ("opa", "osa") } else { ("ipa", "isa") };
    let cols = buckets_for(ctx, labels, out);
    let path_a = if ctx.path {
        ", ARRAY_APPEND(v.path, v.val) AS path"
    } else {
        ""
    };
    if cols.len() == 1 && !labels.is_empty() {
        // Every requested label hashes to one triad: project that column
        // directly — no unnest required.
        let c = cols[0];
        let a = format!(
            "SELECT p.val{c} AS val{path_a} FROM {cur} v, {pa} p \
             WHERE v.val = p.vid AND p.val{c} IS NOT NULL{lbl_filter}",
            cur = ctx.cur,
            lbl_filter = label_in_list(&format!("p.lbl{c}"), labels),
        );
        ctx.push_cte(a);
    } else {
        let triads: Vec<String> = cols
            .iter()
            .map(|c| format!("(p.lbl{c}, p.val{c})"))
            .collect();
        let a = format!(
            "SELECT t.val AS val{path_a} FROM {cur} v, {pa} p, \
             TABLE(VALUES {triads}) AS t(lbl, val) \
             WHERE v.val = p.vid AND t.val IS NOT NULL{lbl_filter}",
            cur = ctx.cur,
            triads = triads.join(", "),
            lbl_filter = label_in_list("t.lbl", labels),
        );
        ctx.push_cte(a);
    }
    let path_b = if ctx.path { ", p.path AS path" } else { "" };
    let b = format!(
        "SELECT COALESCE(s.val, p.val) AS val{path_b} FROM {cur} p \
         LEFT OUTER JOIN {sa} s ON p.val = s.valid",
        cur = ctx.cur,
    );
    ctx.push_cte(b);
}

/// The EA single-lookup template (§3.5): one indexed probe per input.
fn adjacency_ea_step(ctx: &mut Ctx<'_>, labels: &[String], out: bool) {
    let (key, value) = if out {
        ("inv", "outv")
    } else {
        ("outv", "inv")
    };
    let sql = format!(
        "SELECT p.{value} AS val{path} FROM {cur} v, ea p WHERE v.val = p.{key}{lbl}",
        path = ctx.path_step(),
        cur = ctx.cur,
        lbl = label_in_list("p.lbl", labels),
    );
    ctx.push_cte(sql);
}

/// Start of the longest rewritable suffix for multiplicity mode: at least
/// two consecutive `out`/`in`/`both` hops, optionally one `dedup`, then a
/// terminal `count`. Returns the index of the first hop.
fn multiplicity_span(pipes: &[Pipe]) -> Option<usize> {
    if !matches!(pipes.last(), Some(Pipe::Count)) {
        return None;
    }
    let mut hop_end = pipes.len() - 1; // index of Count
    if hop_end >= 1 && matches!(pipes[hop_end - 1], Pipe::Dedup) {
        hop_end -= 1;
    }
    let mut start = hop_end;
    while start > 0 && matches!(pipes[start - 1], Pipe::Out(_) | Pipe::In(_) | Pipe::Both(_)) {
        start -= 1;
    }
    (hop_end - start >= 2).then_some(start)
}

/// Translate a multiplicity span (see [`multiplicity_span`]): the frontier
/// carries `(val, m)` — a distinct vertex and how many traversal paths
/// reach it — so each hop joins over distinct vertices only. `dedup` drops
/// `m` (distinct vertices are exactly the deduplicated result) and `count`
/// totals `SUM(m)` (or `COUNT(*)` after a dedup).
fn translate_multiplicity(ctx: &mut Ctx<'_>, pipes: &[Pipe]) -> Result<(), Unsupported> {
    // Seed: collapse the incoming frontier to distinct vertices.
    ctx.push_cte(format!(
        "SELECT val, COUNT(*) AS m FROM {cur} GROUP BY val",
        cur = ctx.cur
    ));
    let mut deduped = false;
    for pipe in pipes {
        match pipe {
            Pipe::Out(labels) | Pipe::In(labels) => {
                multiplicity_arm(ctx, labels, matches!(pipe, Pipe::Out(_)));
                multiplicity_compress(ctx);
                ctx.transforms += 1;
            }
            Pipe::Both(labels) => {
                let input = ctx.cur.clone();
                multiplicity_arm(ctx, labels, true);
                let out_tbl = ctx.cur.clone();
                ctx.cur = input;
                multiplicity_arm(ctx, labels, false);
                let in_tbl = ctx.cur.clone();
                ctx.push_cte(format!(
                    "SELECT * FROM {out_tbl} UNION ALL SELECT * FROM {in_tbl}"
                ));
                multiplicity_compress(ctx);
                ctx.transforms += 1;
            }
            Pipe::Dedup => {
                ctx.push_cte(format!("SELECT DISTINCT val FROM {cur}", cur = ctx.cur));
                deduped = true;
            }
            Pipe::Count => {
                if deduped {
                    ctx.push_cte(format!("SELECT COUNT(*) AS val FROM {cur}", cur = ctx.cur));
                } else {
                    // SUM over an empty frontier is NULL; a count must be 0.
                    ctx.push_cte(format!("SELECT SUM(m) AS val FROM {cur}", cur = ctx.cur));
                    ctx.push_cte(format!(
                        "SELECT COALESCE(val, 0) AS val FROM {cur}",
                        cur = ctx.cur
                    ));
                }
                ctx.kind = Kind::Value;
            }
            other => {
                return Err(Unsupported::new(format!(
                    "pipe {other:?} inside a multiplicity span"
                )))
            }
        }
    }
    Ok(())
}

/// One directional hop in multiplicity mode: the OPA/IPA probe fused with
/// the per-target `SUM(m)` regroup, then the OSA/ISA multi-value resolve
/// (which forwards `m` unchanged — re-collisions are compressed by the
/// caller via [`multiplicity_compress`]).
fn multiplicity_arm(ctx: &mut Ctx<'_>, labels: &[String], out: bool) {
    let (pa, sa) = if out { ("opa", "osa") } else { ("ipa", "isa") };
    let cols = buckets_for(ctx, labels, out);
    if cols.len() == 1 && !labels.is_empty() {
        let c = cols[0];
        let a = format!(
            "SELECT p.val{c} AS val, SUM(v.m) AS m FROM {cur} v, {pa} p \
             WHERE v.val = p.vid AND p.val{c} IS NOT NULL{lbl_filter} GROUP BY p.val{c}",
            cur = ctx.cur,
            lbl_filter = label_in_list(&format!("p.lbl{c}"), labels),
        );
        ctx.push_cte(a);
    } else {
        let triads: Vec<String> = cols
            .iter()
            .map(|c| format!("(p.lbl{c}, p.val{c})"))
            .collect();
        let a = format!(
            "SELECT t.val AS val, SUM(v.m) AS m FROM {cur} v, {pa} p, \
             TABLE(VALUES {triads}) AS t(lbl, val) \
             WHERE v.val = p.vid AND t.val IS NOT NULL{lbl_filter} GROUP BY t.val",
            cur = ctx.cur,
            triads = triads.join(", "),
            lbl_filter = label_in_list("t.lbl", labels),
        );
        ctx.push_cte(a);
    }
    let b = format!(
        "SELECT COALESCE(s.val, p.val) AS val, p.m AS m FROM {cur} p \
         LEFT OUTER JOIN {sa} s ON p.val = s.valid",
        cur = ctx.cur,
    );
    ctx.push_cte(b);
}

/// Re-compress a multiplicity frontier to one row per distinct vertex.
fn multiplicity_compress(ctx: &mut Ctx<'_>) {
    ctx.push_cte(format!(
        "SELECT val, SUM(m) AS m FROM {cur} GROUP BY val",
        cur = ctx.cur
    ));
}

/// Attribute-table alias for the current element kind.
fn attr_join(ctx: &Ctx<'_>) -> Result<(&'static str, &'static str), Unsupported> {
    match ctx.kind {
        Kind::Vertex => Ok(("va", "vid")),
        Kind::Edge => Ok(("ea", "eid")),
        Kind::Value => Err(Unsupported::new("attribute access on a computed value")),
    }
}

fn translate_one(ctx: &mut Ctx<'_>, pipe: &Pipe) -> Result<(), Unsupported> {
    match pipe {
        // ---- starts ----
        Pipe::Vertices { filter } => {
            let path = if ctx.path { ", ARRAY() AS path" } else { "" };
            let mut sql = format!("SELECT vid AS val{path} FROM va WHERE vid >= 0");
            if let Some((key, value)) = filter {
                write!(
                    sql,
                    " AND JSON_VAL(attr, {}) = {}",
                    sql_str(key),
                    sql_json(value)?
                )
                .expect("write");
            }
            ctx.push_cte(sql);
            ctx.kind = Kind::Vertex;
        }
        Pipe::Edges => {
            let path = if ctx.path { ", ARRAY() AS path" } else { "" };
            ctx.push_cte(format!("SELECT eid AS val{path} FROM ea"));
            ctx.kind = Kind::Edge;
        }
        Pipe::VertexById(id) => {
            let path = if ctx.path { ", ARRAY() AS path" } else { "" };
            ctx.push_cte(format!("SELECT vid AS val{path} FROM va WHERE vid = {id}"));
            ctx.kind = Kind::Vertex;
        }
        Pipe::EdgeById(id) => {
            let path = if ctx.path { ", ARRAY() AS path" } else { "" };
            ctx.push_cte(format!("SELECT eid AS val{path} FROM ea WHERE eid = {id}"));
            ctx.kind = Kind::Edge;
        }

        // ---- vertex transforms ----
        Pipe::Out(labels) | Pipe::In(labels) | Pipe::Both(labels) => {
            if ctx.kind != Kind::Vertex {
                return Err(Unsupported::new("out/in/both on a non-vertex"));
            }
            let single_lookup = match ctx.options.adjacency {
                AdjacencyStrategy::Auto => ctx.traversal_steps == 1,
                AdjacencyStrategy::ForceHash => false,
                AdjacencyStrategy::ForceEa => true,
            };
            match pipe {
                Pipe::Out(_) => {
                    if single_lookup {
                        adjacency_ea_step(ctx, labels, true);
                    } else {
                        adjacency_hash_step(ctx, labels, true);
                    }
                }
                Pipe::In(_) => {
                    if single_lookup {
                        adjacency_ea_step(ctx, labels, false);
                    } else {
                        adjacency_hash_step(ctx, labels, false);
                    }
                }
                _ => {
                    // both = out UNION ALL in, from the same input.
                    let input = ctx.cur.clone();
                    if single_lookup {
                        adjacency_ea_step(ctx, labels, true);
                    } else {
                        adjacency_hash_step(ctx, labels, true);
                    }
                    let out_tbl = ctx.cur.clone();
                    ctx.cur = input;
                    if single_lookup {
                        adjacency_ea_step(ctx, labels, false);
                    } else {
                        adjacency_hash_step(ctx, labels, false);
                    }
                    let in_tbl = ctx.cur.clone();
                    ctx.push_cte(format!(
                        "SELECT * FROM {out_tbl} UNION ALL SELECT * FROM {in_tbl}"
                    ));
                }
            }
            ctx.transforms += 1;
            ctx.kind = Kind::Vertex;
        }
        Pipe::OutE(labels) | Pipe::InE(labels) | Pipe::BothE(labels) => {
            if ctx.kind != Kind::Vertex {
                return Err(Unsupported::new("outE/inE/bothE on a non-vertex"));
            }
            let mk = |ctx: &Ctx<'_>, key: &str, labels: &[String]| {
                format!(
                    "SELECT p.eid AS val{path} FROM {cur} v, ea p WHERE v.val = p.{key}{lbl}",
                    path = ctx.path_step(),
                    cur = ctx.cur,
                    lbl = label_in_list("p.lbl", labels),
                )
            };
            match pipe {
                Pipe::OutE(_) => {
                    let sql = mk(ctx, "inv", labels);
                    ctx.push_cte(sql);
                }
                Pipe::InE(_) => {
                    let sql = mk(ctx, "outv", labels);
                    ctx.push_cte(sql);
                }
                _ => {
                    let input = ctx.cur.clone();
                    let sql = mk(ctx, "inv", labels);
                    ctx.push_cte(sql);
                    let out_tbl = ctx.cur.clone();
                    ctx.cur = input;
                    let sql = mk(ctx, "outv", labels);
                    ctx.push_cte(sql);
                    let in_tbl = ctx.cur.clone();
                    ctx.push_cte(format!(
                        "SELECT * FROM {out_tbl} UNION ALL SELECT * FROM {in_tbl}"
                    ));
                }
            }
            ctx.transforms += 1;
            ctx.kind = Kind::Edge;
        }
        Pipe::OutV | Pipe::InV | Pipe::BothV => {
            if ctx.kind != Kind::Edge {
                return Err(Unsupported::new("outV/inV/bothV on a non-edge"));
            }
            let mk = |ctx: &Ctx<'_>, value: &str| {
                format!(
                    "SELECT p.{value} AS val{path} FROM {cur} v, ea p WHERE v.val = p.eid",
                    path = ctx.path_step(),
                    cur = ctx.cur,
                )
            };
            match pipe {
                Pipe::OutV => {
                    let sql = mk(ctx, "inv");
                    ctx.push_cte(sql);
                }
                Pipe::InV => {
                    let sql = mk(ctx, "outv");
                    ctx.push_cte(sql);
                }
                _ => {
                    let input = ctx.cur.clone();
                    let sql = mk(ctx, "inv");
                    ctx.push_cte(sql);
                    let a = ctx.cur.clone();
                    ctx.cur = input;
                    let sql = mk(ctx, "outv");
                    ctx.push_cte(sql);
                    let b = ctx.cur.clone();
                    ctx.push_cte(format!("SELECT * FROM {a} UNION ALL SELECT * FROM {b}"));
                }
            }
            ctx.transforms += 1;
            ctx.kind = Kind::Vertex;
        }
        Pipe::Id => {
            if ctx.kind == Kind::Value {
                return Err(Unsupported::new("id() on a computed value"));
            }
            let sql = format!(
                "SELECT v.val AS val{path} FROM {cur} v",
                path = ctx.path_step(),
                cur = ctx.cur
            );
            ctx.push_cte(sql);
            ctx.transforms += 1;
            ctx.kind = Kind::Value;
        }
        Pipe::Label => {
            if ctx.kind != Kind::Edge {
                return Err(Unsupported::new("label on a non-edge"));
            }
            let sql = format!(
                "SELECT p.lbl AS val{path} FROM {cur} v, ea p WHERE v.val = p.eid",
                path = ctx.path_step(),
                cur = ctx.cur
            );
            ctx.push_cte(sql);
            ctx.transforms += 1;
            ctx.kind = Kind::Value;
        }
        Pipe::Values(key) => {
            let (table, id_col) = attr_join(ctx)?;
            let sql = format!(
                "SELECT JSON_VAL(p.attr, {k}) AS val{path} FROM {cur} v, {table} p \
                 WHERE v.val = p.{id_col} AND JSON_VAL(p.attr, {k}) IS NOT NULL",
                k = sql_str(key),
                path = ctx.path_step(),
                cur = ctx.cur,
            );
            ctx.push_cte(sql);
            ctx.transforms += 1;
            ctx.kind = Kind::Value;
        }
        Pipe::Path => {
            let sql = format!(
                "SELECT ARRAY_APPEND(v.path, v.val) AS val, ARRAY_APPEND(v.path, v.val) AS path FROM {cur} v",
                cur = ctx.cur
            );
            ctx.push_cte(sql);
            ctx.transforms += 1;
            ctx.kind = Kind::Value;
        }
        Pipe::Back(target) => {
            let (mark_transforms, mark_kind) = match target {
                BackTarget::Named(name) => *ctx
                    .marks
                    .get(name)
                    .ok_or_else(|| Unsupported::new(format!("no mark as('{name}')")))?,
                BackTarget::Steps(n) => {
                    let m = ctx
                        .transforms
                        .checked_sub(*n)
                        .ok_or_else(|| Unsupported::new("back(n) rewinds past the start"))?;
                    // The kind that far back is unknowable without a full
                    // re-walk; vertices dominate real queries.
                    (m, Kind::Vertex)
                }
            };
            if mark_transforms == ctx.transforms {
                return Ok(()); // back to the current step: identity
            }
            let sql = format!(
                "SELECT v.path[{m}] AS val, ARRAY_APPEND(v.path, v.val) AS path FROM {cur} v",
                m = mark_transforms,
                cur = ctx.cur
            );
            ctx.push_cte(sql);
            ctx.transforms += 1;
            ctx.kind = mark_kind;
        }

        // ---- filters ----
        Pipe::Has { key, cmp, value } => {
            let (table, id_col) = attr_join(ctx)?;
            let cond = match value {
                None => format!("JSON_VAL(p.attr, {}) IS NOT NULL", sql_str(key)),
                Some(v) => format!(
                    "JSON_VAL(p.attr, {}) {} {}",
                    sql_str(key),
                    cmp_sql(*cmp),
                    sql_json(v)?
                ),
            };
            // The attribute table is written first in textual order; the
            // relational planner reorders the join from table statistics, so
            // translation no longer hand-tunes which side leads.
            let sql = format!(
                "SELECT v.* FROM {table} p, {cur} v WHERE v.val = p.{id_col} AND {cond}",
                cur = ctx.cur,
            );
            ctx.push_cte(sql);
        }
        Pipe::HasNot { key } => {
            let (table, id_col) = attr_join(ctx)?;
            let sql = format!(
                "SELECT v.* FROM {table} p, {cur} v WHERE v.val = p.{id_col} \
                 AND JSON_VAL(p.attr, {k}) IS NULL",
                cur = ctx.cur,
                k = sql_str(key),
            );
            ctx.push_cte(sql);
        }
        Pipe::Filter(closure) => {
            let uses_props = closure_uses_props(closure);
            if uses_props {
                let (table, id_col) = attr_join(ctx)?;
                let cond = closure_sql(closure, "p.attr", "v.val")?;
                let sql = format!(
                    "SELECT v.* FROM {table} p, {cur} v WHERE v.val = p.{id_col} \
                     AND COALESCE(({cond}), FALSE)",
                    cur = ctx.cur,
                );
                ctx.push_cte(sql);
            } else {
                let cond = closure_sql(closure, "p.attr", "v.val")?;
                let sql = format!(
                    "SELECT v.* FROM {cur} v WHERE COALESCE(({cond}), FALSE)",
                    cur = ctx.cur
                );
                ctx.push_cte(sql);
            }
        }
        Pipe::Interval { key, lo, hi } => {
            let (table, id_col) = attr_join(ctx)?;
            let sql = format!(
                "SELECT v.* FROM {table} p, {cur} v WHERE v.val = p.{id_col} \
                 AND JSON_VAL(p.attr, {k}) >= {lo} AND JSON_VAL(p.attr, {k}) < {hi}",
                cur = ctx.cur,
                k = sql_str(key),
                lo = sql_json(lo)?,
                hi = sql_json(hi)?,
            );
            ctx.push_cte(sql);
        }
        Pipe::Range { lo, hi } => {
            if *lo < 0 || *hi < *lo {
                return Err(Unsupported::new("invalid range bounds"));
            }
            let sql = format!(
                "SELECT * FROM {cur} LIMIT {limit} OFFSET {lo}",
                cur = ctx.cur,
                limit = hi - lo + 1,
            );
            ctx.push_cte(sql);
        }
        Pipe::Dedup => {
            let sql = if ctx.path {
                format!(
                    "SELECT val, MIN(path) AS path FROM {cur} GROUP BY val",
                    cur = ctx.cur
                )
            } else {
                format!("SELECT DISTINCT val FROM {cur}", cur = ctx.cur)
            };
            ctx.push_cte(sql);
        }
        Pipe::Except(var) | Pipe::Retain(var) => {
            let bag = ctx
                .bags
                .get(var)
                .cloned()
                .ok_or_else(|| Unsupported::new(format!("unknown aggregate bag '{var}'")))?;
            let not = if matches!(pipe, Pipe::Except(_)) {
                "NOT "
            } else {
                ""
            };
            let sql = format!(
                "SELECT v.* FROM {cur} v WHERE v.val {not}IN (SELECT val FROM {bag})",
                cur = ctx.cur,
            );
            ctx.push_cte(sql);
        }
        Pipe::SimplePath => {
            let sql = format!(
                "SELECT v.* FROM {cur} v WHERE IS_SIMPLE_PATH(ARRAY_APPEND(v.path, v.val)) = 1",
                cur = ctx.cur
            );
            ctx.push_cte(sql);
        }
        Pipe::And(branches) | Pipe::Or(branches) => {
            let input = ctx.cur.clone();
            let mut membership = Vec::new();
            for branch in branches {
                let out = translate_branch(ctx, &input, branch)?;
                membership.push(format!(
                    "v.val IN (SELECT COALESCE(p.path[0], p.val) FROM {out} p)"
                ));
            }
            let joiner = if matches!(pipe, Pipe::And(_)) {
                " AND "
            } else {
                " OR "
            };
            let sql = format!(
                "SELECT v.* FROM {input} v WHERE {}",
                membership.join(joiner)
            );
            ctx.push_cte(sql);
        }

        // ---- side effects ----
        Pipe::As(name) => {
            ctx.marks.insert(name.clone(), (ctx.transforms, ctx.kind));
        }
        Pipe::Aggregate(var) => {
            ctx.bags.insert(var.clone(), ctx.cur.clone());
        }
        Pipe::SideEffect(_) => {}

        // ---- branches ----
        Pipe::IfThenElse { test, then, els } => {
            let (table, id_col) = attr_join(ctx)?;
            let test_sql = closure_sql(test, "p.attr", "v.val")?;
            let then_sql = closure_value_sql(then, "p.attr", "v.val")?;
            let els_sql = closure_value_sql(els, "p.attr", "v.val")?;
            let path = ctx.path_step();
            let sql = format!(
                "SELECT {then_sql} AS val{path} FROM {cur} v, {table} p \
                 WHERE v.val = p.{id_col} AND COALESCE(({test_sql}), FALSE) \
                 UNION ALL \
                 SELECT {els_sql} AS val{path} FROM {cur} v, {table} p \
                 WHERE v.val = p.{id_col} AND NOT COALESCE(({test_sql}), FALSE)",
                cur = ctx.cur,
            );
            ctx.push_cte(sql);
            ctx.transforms += 1;
            ctx.kind = Kind::Value;
        }
        Pipe::CopySplit(branches) => {
            let input = ctx.cur.clone();
            let in_kind = ctx.kind;
            let mut outs = Vec::new();
            let mut kinds = Vec::new();
            for branch in branches {
                // Branches continue the parent's path mode.
                let saved_transforms = ctx.transforms;
                let saved_marks = ctx.marks.clone();
                ctx.cur = input.clone();
                ctx.kind = in_kind;
                translate_pipes(ctx, &branch.pipes)?;
                outs.push(ctx.cur.clone());
                kinds.push(ctx.kind);
                ctx.transforms = saved_transforms;
                ctx.marks = saved_marks;
            }
            let union: Vec<String> = outs.iter().map(|o| format!("SELECT * FROM {o}")).collect();
            ctx.push_cte(union.join(" UNION ALL "));
            ctx.kind = if kinds.iter().all(|k| *k == kinds[0]) {
                kinds[0]
            } else {
                Kind::Value
            };
            // Path lengths may differ per branch; treat as one transform.
            ctx.transforms += 1;
        }
        Pipe::Loop { .. } => unreachable!("handled in translate_pipes"),

        // ---- reduce ----
        Pipe::Count => {
            let sql = format!("SELECT COUNT(*) AS val FROM {cur}", cur = ctx.cur);
            ctx.push_cte(sql);
            ctx.kind = Kind::Value;
            ctx.path = false;
        }
    }
    Ok(())
}

/// Translate a branch pipeline with a fresh path (for origin correlation).
fn translate_branch(
    ctx: &mut Ctx<'_>,
    input: &str,
    branch: &Pipeline,
) -> Result<String, Unsupported> {
    let saved = (
        ctx.cur.clone(),
        ctx.kind,
        ctx.path,
        ctx.transforms,
        ctx.marks.clone(),
    );
    // Branch input: reset path so path[0] is the branch origin.
    ctx.push_cte(format!("SELECT val, ARRAY() AS path FROM {input}"));
    ctx.path = true;
    ctx.transforms = 0;
    ctx.marks = HashMap::new();
    translate_pipes(ctx, &branch.pipes)?;
    let out = ctx.cur.clone();
    let (cur, kind, path, transforms, marks) = saved;
    ctx.cur = cur;
    ctx.kind = kind;
    ctx.path = path;
    ctx.transforms = transforms;
    ctx.marks = marks;
    Ok(out)
}

pub(crate) fn cmp_sql(cmp: Cmp) -> &'static str {
    match cmp {
        Cmp::Eq => "=",
        Cmp::Neq => "<>",
        Cmp::Lt => "<",
        Cmp::Lte => "<=",
        Cmp::Gt => ">",
        Cmp::Gte => ">=",
    }
}

fn closure_uses_props(c: &Closure) -> bool {
    match c {
        Closure::Prop(_) => true,
        Closure::Compare(_, l, r)
        | Closure::And(l, r)
        | Closure::Or(l, r)
        | Closure::Contains(l, r) => closure_uses_props(l) || closure_uses_props(r),
        Closure::Not(x) => closure_uses_props(x),
        _ => false,
    }
}

/// Render a boolean closure as a SQL condition. `attr` is the JSON
/// attribute column of the joined table, `val` the element id column.
fn closure_sql(c: &Closure, attr: &str, val: &str) -> Result<String, Unsupported> {
    Ok(match c {
        Closure::Compare(cmp, l, r) => format!(
            "{} {} {}",
            closure_value_sql(l, attr, val)?,
            cmp_sql(*cmp),
            closure_value_sql(r, attr, val)?
        ),
        Closure::And(l, r) => format!(
            "({}) AND ({})",
            closure_sql(l, attr, val)?,
            closure_sql(r, attr, val)?
        ),
        Closure::Or(l, r) => format!(
            "({}) OR ({})",
            closure_sql(l, attr, val)?,
            closure_sql(r, attr, val)?
        ),
        Closure::Not(x) => format!("NOT COALESCE(({}), FALSE)", closure_sql(x, attr, val)?),
        Closure::Contains(hay, needle) => {
            let h = closure_value_sql(hay, attr, val)?;
            match needle.as_ref() {
                Closure::Literal(Json::Str(s)) => {
                    if s.contains('%') || s.contains('_') {
                        return Err(Unsupported::new("contains() needle with LIKE wildcards"));
                    }
                    format!("{h} LIKE {}", sql_str(&format!("%{s}%")))
                }
                _ => return Err(Unsupported::new("contains() needs a string literal")),
            }
        }
        Closure::Literal(Json::Bool(b)) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        other => {
            return Err(Unsupported::new(format!(
                "closure {other:?} is not boolean"
            )))
        }
    })
}

/// Render a value-producing closure as a SQL expression.
fn closure_value_sql(c: &Closure, attr: &str, val: &str) -> Result<String, Unsupported> {
    Ok(match c {
        Closure::Prop(key) => format!("JSON_VAL({attr}, {})", sql_str(key)),
        Closure::It => val.to_string(),
        Closure::Literal(v) => sql_json(v)?,
        Closure::Loops => return Err(Unsupported::new("it.loops outside a static loop bound")),
        other => closure_sql(other, attr, val)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgraph_gremlin::parse_query;

    fn layout() -> GraphLayout {
        GraphLayout::trivial(4, 4)
    }

    fn tr(q: &str) -> Result<String, Unsupported> {
        translate(&parse_query(q).unwrap(), &layout())
    }

    #[test]
    fn figure7_shape() {
        // The paper's running example compiles to a CTE chain ending in a
        // COUNT over a dedup.
        let sql = tr("g.V.filter{it.tag=='w'}.both.dedup().count()").unwrap();
        assert!(sql.starts_with("WITH "));
        assert!(sql.contains("JSON_VAL(p.attr, 'tag') = 'w'"));
        assert!(sql.contains("UNION ALL"));
        assert!(sql.contains("SELECT DISTINCT val"));
        assert!(sql.contains("SELECT COUNT(*) AS val"));
        assert!(sql.contains("vid >= 0"));
    }

    #[test]
    fn single_step_uses_ea() {
        let sql = tr("g.v(5).out('knows')").unwrap();
        assert!(sql.contains("ea p"), "single hop should use EA: {sql}");
        assert!(!sql.contains("opa"));
        assert!(sql.contains("p.lbl IN ('knows')"));
    }

    #[test]
    fn multi_step_uses_hash_tables() {
        let sql = tr("g.v(5).out('a').out('b')").unwrap();
        assert!(sql.contains("opa p"), "multi hop should use OPA: {sql}");
        assert!(sql.contains("LEFT OUTER JOIN osa"));
    }

    #[test]
    fn labeled_traversal_prunes_buckets() {
        let sql = tr("g.v(5).out('x').out('x')").unwrap();
        // With 4 buckets but one label, only one triad should be unnested.
        let count = sql.matches("p.lbl").count();
        // one lbl per unnest + IN filters; far fewer than 4 buckets × 2 steps
        assert!(count <= 6, "bucket pruning failed: {sql}");
    }

    #[test]
    fn unlabeled_traversal_unnests_all_buckets() {
        let sql = tr("g.v(5).out.out").unwrap();
        assert!(sql.contains("p.lbl3"), "all 4 buckets expected: {sql}");
    }

    #[test]
    fn graph_query_merges_start_filter() {
        let sql = tr("g.V('uri','x').in('type')").unwrap();
        assert!(sql.contains("JSON_VAL(attr, 'uri') = 'x'"));
    }

    #[test]
    fn path_tracking_enabled_on_demand() {
        let with_path = tr("g.v(1).out.out.path").unwrap();
        assert!(with_path.contains("ARRAY() AS path"));
        assert!(with_path.contains("ARRAY_APPEND(v.path, v.val)"));
        let without = tr("g.v(1).out.out").unwrap();
        assert!(!without.contains("path"));
    }

    #[test]
    fn loops_unroll() {
        let sql = tr("g.v(1).out.loop(1){it.loops < 3}").unwrap();
        // out + 2 unrolled = 3 adjacency steps (each = 2 CTEs).
        assert_eq!(sql.matches("opa p").count(), 3);
    }

    #[test]
    fn dynamic_loops_are_unsupported() {
        let err = tr("g.v(1).out.loop(1){it.weight < 3}").unwrap_err();
        assert!(err.reason.contains("loop"));
    }

    #[test]
    fn back_uses_path_index() {
        let sql = tr("g.V.as('x').out('a').back('x')").unwrap();
        assert!(sql.contains("v.path[0] AS val"), "{sql}");
    }

    #[test]
    fn aggregate_except() {
        let sql = tr("g.v(1).aggregate(x).out.out.except(x)").unwrap();
        assert!(sql.contains("NOT IN (SELECT val FROM t1)"), "{sql}");
    }

    #[test]
    fn deletion_guard_present_on_v_scan() {
        let sql = tr("g.V").unwrap();
        assert!(sql.contains("vid >= 0"));
    }

    #[test]
    fn count_star_terminal() {
        let sql = tr("g.V.count()").unwrap();
        assert!(sql.ends_with("SELECT val FROM t2"));
    }

    #[test]
    fn multihop_count_uses_multiplicities() {
        let sql = tr("g.V.out.out.count()").unwrap();
        assert!(
            sql.contains("COUNT(*) AS m"),
            "seed compress missing: {sql}"
        );
        assert!(
            sql.contains("SUM(v.m) AS m"),
            "fused hop regroup missing: {sql}"
        );
        assert!(
            sql.contains("SELECT COALESCE(val, 0) AS val"),
            "empty-frontier count guard missing: {sql}"
        );
    }

    #[test]
    fn multihop_dedup_count_drops_multiplicity_at_dedup() {
        let sql = tr("g.V.out.out.dedup().count()").unwrap();
        assert!(sql.contains("SUM(v.m) AS m"), "{sql}");
        assert!(sql.contains("SELECT DISTINCT val"), "{sql}");
        assert!(sql.contains("SELECT COUNT(*) AS val"), "{sql}");
        assert!(!sql.contains("SUM(m) AS val"), "dedup must drop m: {sql}");
    }

    #[test]
    fn single_hop_count_keeps_row_template() {
        let sql = tr("g.V.out.count()").unwrap();
        assert!(!sql.contains(" AS m"), "{sql}");
    }

    #[test]
    fn factorize_off_keeps_row_templates() {
        let opts = TranslateOptions {
            factorize: false,
            ..TranslateOptions::default()
        };
        let sql = translate_with(
            &parse_query("g.V.out.out.count()").unwrap(),
            &layout(),
            opts,
        )
        .unwrap();
        assert!(!sql.contains(" AS m"), "{sql}");
    }

    #[test]
    fn force_ea_disables_multiplicities() {
        let opts = TranslateOptions {
            adjacency: AdjacencyStrategy::ForceEa,
            factorize: true,
        };
        let sql = translate_with(
            &parse_query("g.V.out.out.count()").unwrap(),
            &layout(),
            opts,
        )
        .unwrap();
        assert!(!sql.contains(" AS m"), "{sql}");
        assert!(sql.contains("ea p"), "{sql}");
    }

    #[test]
    fn path_queries_never_use_multiplicities() {
        let sql = tr("g.v(1).out.out.path").unwrap();
        assert!(!sql.contains(" AS m"), "{sql}");
    }
}
