//! Hash-partitioned graph shards with scatter-gather execution.
//!
//! [`ShardedGraph`] splits the six-table store across N inner [`SqlGraph`]
//! instances by hashing vertex ids ([`shard_of`]). Placement follows the
//! vertex: a vertex's attribute row (`VA`) and **both** of its adjacency
//! directions (`OPA`/`OSA` and `IPA`/`ISA`) live on its owner shard, while
//! an edge's `EA` row lives on its *source* vertex's shard. Any hop that
//! starts from a vertex therefore touches exactly one shard — out-hops read
//! the local `EA` triple rows, in-hops read the local `IPA`/`ISA` hash
//! tables — and single-VID point lookups route to exactly one shard.
//!
//! Reads fan out through the shared [`sqlgraph_rel::parallel`] worker pool
//! (one pool for the whole process, not N×DOP threads; per-shard SQL runs
//! serially inside a pool worker). Per-shard results are merged
//! deterministically — sorted by `(input position, eid)` for hops, by id
//! for global scans, and terminal `count()` reduces per-shard `COUNT(*)`
//! partials — so the same query returns byte-identical rows at every shard
//! count. Pipes outside the scatter subset fall back to the step-at-a-time
//! interpreter over this type's [`Blueprints`] implementation, mirroring
//! the unsharded store's stored-procedure fallback (§4.4 of the paper).
//!
//! Writes that touch one shard commit locally. A cross-shard edge insert or
//! the §4.5.2 negative-ID vertex delete spans shards: every participating
//! shard's transaction is committed by [`sqlgraph_rel::commit_many`] under
//! **one** timestamp drawn from the [`TsOracle`] all shards were built
//! over, with WAL appends in ascending shard order. A crash between the
//! appends is repaired at [`ShardedGraph::open`] by reconciliation: the
//! `EA` row is the commit record for an edge (shards missing their
//! adjacency half are rolled forward; adjacency entries whose `EA` row
//! never became durable are rolled back), and a vertex tombstone wins over
//! any surviving incident edge.

use crate::layout::GraphLayout;
use crate::schema::{deleted_id, SchemaConfig, MV_BASE};
use crate::store::{
    elems_to_relation, layout_for, props_to_json, to_graph_error, GraphData, SqlGraph,
};
use crate::translate::{cmp_sql, label_in_list, sql_json, sql_str};
use crate::CoreError;
use parking_lot::{Mutex, RwLock};
use sqlgraph_gremlin::ast::{GremlinStatement, Pipe};
use sqlgraph_gremlin::blueprints::{Blueprints, Direction, GraphError, GraphResult};
use sqlgraph_gremlin::{interp, parse};
use sqlgraph_json::Json;
use sqlgraph_rel::{commit_many, Relation, TsOracle, Txn, Value};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Retry budget for sharded mutations that lose a first-updater-wins
/// conflict (same policy as the unsharded store).
const TXN_RETRIES: usize = 16;

/// How many ids go into one `IN (...)` list when a frontier is shipped to a
/// shard. Bounds generated-SQL size; larger frontiers issue several probes.
const FRONTIER_CHUNK: usize = 256;

/// Hash-partition a vertex id onto one of `n` shards.
///
/// Seed-free splitmix64 finalizer: the assignment is a pure function of
/// `(vid, n)`, identical across processes and restarts, so a shard
/// directory written by one run can be reopened by any other.
pub fn shard_of(vid: i64, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let mut x = vid as u64;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % n as u64) as usize
}

/// A property graph hash-partitioned across N inner [`SqlGraph`] stores.
///
/// Presents the same query/CRUD surface as [`SqlGraph`]: Gremlin via
/// [`ShardedGraph::query`], the chatty [`Blueprints`] API, bulk load,
/// checkpoint, and vacuum. See the module docs for placement and execution.
pub struct ShardedGraph {
    shards: Vec<SqlGraph>,
    config: SchemaConfig,
    /// Cross-shard vertex deletion must not interleave with other sharded
    /// mutations (same dangling-edge hazard as the unsharded store, now
    /// across shards). Deletion takes this exclusively; every other
    /// sharded mutation takes it shared.
    mutation_lock: RwLock<()>,
    /// Shard-global id allocators (each shard's own counters only track
    /// its local maxima).
    next_vid: AtomicI64,
    next_eid: AtomicI64,
    fallbacks: AtomicU64,
}

impl std::fmt::Debug for ShardedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedGraph")
            .field("shards", &self.shards.len())
            .field("config", &self.config)
            .finish()
    }
}

impl ShardedGraph {
    /// A fresh in-memory sharded store with the default layout.
    pub fn new_in_memory(n: usize) -> ShardedGraph {
        ShardedGraph::with_config(n, SchemaConfig::default()).expect("default schema is valid")
    }

    /// A fresh in-memory sharded store with explicit bucket counts. All
    /// shards draw commit timestamps from one shared [`TsOracle`].
    pub fn with_config(n: usize, config: SchemaConfig) -> Result<ShardedGraph, CoreError> {
        let oracle = Arc::new(TsOracle::new());
        let shards = (0..n.max(1))
            .map(|_| SqlGraph::with_config_oracle(config, oracle.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedGraph::assemble(shards, config))
    }

    /// Open (or create) a WAL-backed sharded store. Shard `i` keeps its
    /// WAL and checkpoints under `dir/shard-i/`; each shard recovers
    /// independently by replay, then cross-shard reconciliation repairs
    /// any commit that a crash left durable on only some shards.
    pub fn open(
        dir: impl AsRef<Path>,
        n: usize,
        config: SchemaConfig,
    ) -> Result<ShardedGraph, CoreError> {
        let dir = dir.as_ref();
        for i in 0..n.max(1) {
            std::fs::create_dir_all(dir.join(format!("shard-{i}")))
                .map_err(|e| CoreError::Rel(sqlgraph_rel::Error::Wal(e.to_string())))?;
        }
        ShardedGraph::open_with_vfs(dir, n, config, Arc::new(sqlgraph_rel::StdFs))
    }

    /// [`ShardedGraph::open`] over an explicit file-system layer (all
    /// shards share `vfs`), for deterministic crash testing with
    /// [`sqlgraph_rel::SimFs`].
    pub fn open_with_vfs(
        dir: impl AsRef<Path>,
        n: usize,
        config: SchemaConfig,
        vfs: Arc<dyn sqlgraph_rel::Vfs>,
    ) -> Result<ShardedGraph, CoreError> {
        let dir = dir.as_ref();
        let oracle = Arc::new(TsOracle::new());
        let shards = (0..n.max(1))
            .map(|i| {
                SqlGraph::open_with_vfs_oracle(
                    dir.join(format!("shard-{i}")).join("wal"),
                    config,
                    vfs.clone(),
                    oracle.clone(),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let graph = ShardedGraph::assemble(shards, config);
        if graph.shards.len() > 1 {
            graph.reconcile()?;
        }
        Ok(graph)
    }

    fn assemble(shards: Vec<SqlGraph>, config: SchemaConfig) -> ShardedGraph {
        let next_vid = shards
            .iter()
            .map(SqlGraph::next_vid_hint)
            .max()
            .unwrap_or(1);
        let next_eid = shards
            .iter()
            .map(SqlGraph::next_eid_hint)
            .max()
            .unwrap_or(1);
        ShardedGraph {
            shards,
            config,
            mutation_lock: RwLock::new(()),
            next_vid: AtomicI64::new(next_vid),
            next_eid: AtomicI64::new(next_eid),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The inner stores (inspection, benchmarks).
    pub fn shards(&self) -> &[SqlGraph] {
        &self.shards
    }

    /// The shard that owns vertex `vid`.
    pub fn shard_for(&self, vid: i64) -> &SqlGraph {
        &self.shards[shard_of(vid, self.shards.len())]
    }

    /// Number of queries that used the interpreter fallback.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Fsync every shard's WAL on commit.
    pub fn set_sync_on_commit(&self, sync: bool) {
        for s in &self.shards {
            s.set_sync_on_commit(sync);
        }
    }

    /// Set intra-query parallelism on every shard (0 = auto).
    pub fn set_parallelism(&self, n: usize) {
        for s in &self.shards {
            s.database().set_parallelism(n);
        }
    }

    /// Checkpoint every shard (each rotates its own WAL).
    pub fn checkpoint(&self) -> Result<Vec<sqlgraph_rel::CheckpointReport>, CoreError> {
        self.shards.iter().map(SqlGraph::checkpoint).collect()
    }

    /// Physically remove tombstoned rows on every shard (§4.5.2 offline
    /// cleanup); returns the total rows reclaimed.
    pub fn vacuum(&self) -> Result<usize, CoreError> {
        let mut total = 0;
        for s in &self.shards {
            total += s.vacuum()?;
        }
        Ok(total)
    }

    /// Bulk-load a complete graph, partitioned: the §3.2 coloring layout is
    /// computed once from the full data (so every shard colors labels
    /// identically), then shards load their slices in parallel.
    pub fn bulk_load(&self, data: &GraphData) -> Result<(), CoreError> {
        let n = self.shards.len();
        let layout = layout_for(&self.config, [data]);
        self.fan_out(|i| {
            let part = if n == 1 { None } else { Some((n, i)) };
            self.shards[i].bulk_load_with_layout(data, &layout, part)
        })?;
        let max_vid = data.vertices.iter().map(|(v, _)| *v).max().unwrap_or(0);
        let max_eid = data.edges.iter().map(|(e, ..)| *e).max().unwrap_or(0);
        self.next_vid.fetch_max(max_vid + 1, Ordering::SeqCst);
        self.next_eid.fetch_max(max_eid + 1, Ordering::SeqCst);
        Ok(())
    }

    /// Create the functional vertex-attribute index on every shard.
    pub fn create_vertex_property_index(&self, key: &str) -> Result<(), CoreError> {
        for s in &self.shards {
            s.create_vertex_property_index(key)?;
        }
        Ok(())
    }

    /// Create the functional edge-attribute index on every shard.
    pub fn create_edge_property_index(&self, key: &str) -> Result<(), CoreError> {
        for s in &self.shards {
            s.create_edge_property_index(key)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scatter-gather fan-out
    // ------------------------------------------------------------------

    /// Run `f(shard_index)` for every shard through the shared worker
    /// pool; the calling thread participates. Results come back in shard
    /// order; the first error wins.
    fn fan_out<R: Send>(
        &self,
        f: impl Fn(usize) -> Result<R, CoreError> + Sync,
    ) -> Result<Vec<R>, CoreError> {
        let n = self.shards.len();
        if n == 1 {
            return Ok(vec![f(0)?]);
        }
        let slots: Vec<Mutex<Option<Result<R, CoreError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        sqlgraph_rel::parallel::run_scoped(n, |_| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            *slots[i].lock() = Some(f(i));
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("every shard task ran"))
            .collect()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Execute a Gremlin statement. Traversals in the scatter subset run
    /// scatter-gather across shards; others fall back to the interpreter
    /// over this store's Blueprints API; CRUD statements route to the
    /// sharded mutation paths.
    pub fn query(&self, gremlin: &str) -> Result<Relation, CoreError> {
        let stmt = parse(gremlin)?;
        match &stmt {
            GremlinStatement::Query(pipeline) => {
                if scatter_supported(&pipeline.pipes) {
                    self.exec_scatter(&pipeline.pipes)
                } else {
                    self.fallbacks.fetch_add(1, Ordering::Relaxed);
                    let elems = interp::eval(self, pipeline)?;
                    Ok(elems_to_relation(elems))
                }
            }
            GremlinStatement::AddVertex { props } => {
                let id = self.add_vertex_props(props)?;
                Ok(Relation::new(
                    vec!["val".into()],
                    vec![vec![Value::Int(id)]],
                ))
            }
            GremlinStatement::AddEdge {
                src,
                dst,
                label,
                props,
            } => {
                let id = self.add_edge_props(*src, *dst, label, props)?;
                Ok(Relation::new(
                    vec!["val".into()],
                    vec![vec![Value::Int(id)]],
                ))
            }
            GremlinStatement::RemoveVertex { id } => {
                self.remove_vertex_impl(*id)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
            GremlinStatement::RemoveEdge { id } => {
                self.remove_edge_impl(*id)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
            GremlinStatement::SetVertexProperty { id, key, value } => {
                self.set_vertex_property_impl(*id, key, value)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
            GremlinStatement::SetEdgeProperty { id, key, value } => {
                self.set_edge_property_impl(*id, key, value)?;
                Ok(Relation::new(vec!["val".into()], vec![]))
            }
        }
    }

    /// Evaluate a traversal with the step-at-a-time interpreter over the
    /// sharded Blueprints API (differential testing).
    pub fn query_interpreted(&self, gremlin: &str) -> Result<Relation, CoreError> {
        let stmt = parse(gremlin)?;
        let elems = interp::execute(self, &stmt)?;
        Ok(elems_to_relation(elems))
    }

    fn exec_scatter(&self, pipes: &[Pipe]) -> Result<Relation, CoreError> {
        // Terminal count() over a start or a single hop reduces per-shard
        // COUNT partials instead of materializing the frontier (the
        // mergeable-aggregate path).
        if pipes.len() == 2 && matches!(pipes[1], Pipe::Count) {
            if let Some(total) = self.count_start(&pipes[0])? {
                return Ok(count_relation(total));
            }
        }
        let mut frontier = self.exec_start(&pipes[0])?;
        let mut i = 1;
        while i < pipes.len() {
            // …and count() right after a vertex hop at the end of the
            // pipeline: each shard counts its slice (multi-value lists
            // included) and the driver sums.
            if i + 2 == pipes.len() && matches!(pipes[i + 1], Pipe::Count) {
                if let (Frontier::Vertices(vids), Some((out_dir, labels))) =
                    (&frontier, hop_shape(&pipes[i]))
                {
                    let mut total = 0i64;
                    if out_dir != Some(false) {
                        total += self.count_hop(vids, true, labels)?;
                    }
                    if out_dir != Some(true) {
                        total += self.count_hop(vids, false, labels)?;
                    }
                    return Ok(count_relation(total));
                }
            }
            frontier = self.exec_step(frontier, &pipes[i])?;
            i += 1;
        }
        Ok(frontier.into_relation())
    }

    fn exec_start(&self, pipe: &Pipe) -> Result<Frontier, CoreError> {
        match pipe {
            Pipe::Vertices { filter } => {
                let cond = match filter {
                    None => String::new(),
                    Some((key, value)) => format!(
                        " AND JSON_VAL(attr, {}) = {}",
                        sql_str(key),
                        sql_json(value).map_err(|u| CoreError::Unsupported(u.reason))?
                    ),
                };
                let sql = format!("SELECT vid FROM va WHERE vid >= 0{cond}");
                let parts =
                    self.fan_out(|i| Ok(self.shards[i].database().execute(&sql)?.int_column()))?;
                let mut all: Vec<i64> = parts.into_iter().flatten().collect();
                all.sort_unstable();
                Ok(Frontier::Vertices(all))
            }
            Pipe::Edges => {
                let parts = self.fan_out(|i| {
                    Ok(self.shards[i]
                        .database()
                        .execute("SELECT eid FROM ea")?
                        .int_column())
                })?;
                let mut all: Vec<(i64, usize)> = parts
                    .into_iter()
                    .enumerate()
                    .flat_map(|(i, eids)| eids.into_iter().map(move |e| (e, i)))
                    .collect();
                all.sort_unstable();
                Ok(Frontier::Edges(all))
            }
            Pipe::VertexById(id) => {
                let rel = self
                    .shard_for(*id)
                    .database()
                    .execute_with_params("SELECT vid FROM va WHERE vid = ?", &[Value::Int(*id)])?;
                Ok(Frontier::Vertices(rel.int_column()))
            }
            Pipe::EdgeById(id) => {
                let parts = self.fan_out(|i| {
                    let rel = self.shards[i].database().execute_with_params(
                        "SELECT eid FROM ea WHERE eid = ?",
                        &[Value::Int(*id)],
                    )?;
                    Ok(rel.int_column())
                })?;
                let hits: Vec<(i64, usize)> = parts
                    .into_iter()
                    .enumerate()
                    .flat_map(|(i, eids)| eids.into_iter().map(move |e| (e, i)))
                    .collect();
                Ok(Frontier::Edges(hits))
            }
            _ => unreachable!("scatter_supported admits only start pipes first"),
        }
    }

    fn exec_step(&self, frontier: Frontier, pipe: &Pipe) -> Result<Frontier, CoreError> {
        match (pipe, frontier) {
            // ---- vertex hops ----
            (Pipe::Out(labels), Frontier::Vertices(vids)) => {
                let rows = self.vertex_hop(&vids, true, labels)?;
                Ok(Frontier::Vertices(rows.into_iter().map(|r| r.2).collect()))
            }
            (Pipe::In(labels), Frontier::Vertices(vids)) => {
                let rows = self.vertex_hop(&vids, false, labels)?;
                Ok(Frontier::Vertices(rows.into_iter().map(|r| r.2).collect()))
            }
            (Pipe::Both(labels), Frontier::Vertices(vids)) => {
                let out_rows = self.vertex_hop(&vids, true, labels)?;
                let in_rows = self.vertex_hop(&vids, false, labels)?;
                let merged = merge_by_pos(out_rows, in_rows, vids.len());
                Ok(Frontier::Vertices(
                    merged.into_iter().map(|r| r.2).collect(),
                ))
            }
            (Pipe::OutE(labels), Frontier::Vertices(vids)) => {
                let n = self.shards.len();
                let rows = self.vertex_hop(&vids, true, labels)?;
                // An out-edge's EA row lives on its source's shard.
                Ok(Frontier::Edges(
                    rows.into_iter()
                        .map(|(pos, eid, _)| (eid, shard_of(vids[pos], n)))
                        .collect(),
                ))
            }
            (Pipe::InE(labels), Frontier::Vertices(vids)) => {
                let n = self.shards.len();
                let rows = self.vertex_hop(&vids, false, labels)?;
                // An in-edge's EA row lives on its *source* (the hop
                // result) vertex's shard.
                Ok(Frontier::Edges(
                    rows.into_iter()
                        .map(|(_, eid, src)| (eid, shard_of(src, n)))
                        .collect(),
                ))
            }
            (Pipe::BothE(labels), Frontier::Vertices(vids)) => {
                let n = self.shards.len();
                let out_rows = self.vertex_hop(&vids, true, labels)?;
                let in_rows = self.vertex_hop(&vids, false, labels)?;
                let out_owner: Vec<(usize, i64, i64)> = out_rows
                    .into_iter()
                    .map(|(pos, eid, _)| (pos, eid, shard_of(vids[pos], n) as i64))
                    .collect();
                let in_owner: Vec<(usize, i64, i64)> = in_rows
                    .into_iter()
                    .map(|(pos, eid, src)| (pos, eid, shard_of(src, n) as i64))
                    .collect();
                let merged = merge_by_pos(out_owner, in_owner, vids.len());
                Ok(Frontier::Edges(
                    merged
                        .into_iter()
                        .map(|(_, eid, owner)| (eid, owner as usize))
                        .collect(),
                ))
            }

            // ---- edge → vertex ----
            (Pipe::OutV, Frontier::Edges(edges)) => {
                let ends = self.edge_endpoints(&edges)?;
                Ok(Frontier::Vertices(
                    apply_map(&edges, &ends, |&(src, _)| src).collect(),
                ))
            }
            (Pipe::InV, Frontier::Edges(edges)) => {
                let ends = self.edge_endpoints(&edges)?;
                Ok(Frontier::Vertices(
                    apply_map(&edges, &ends, |&(_, dst)| dst).collect(),
                ))
            }
            (Pipe::BothV, Frontier::Edges(edges)) => {
                let ends = self.edge_endpoints(&edges)?;
                let mut vids = Vec::with_capacity(edges.len() * 2);
                for (eid, _) in &edges {
                    if let Some((src, dst)) = ends.get(eid) {
                        vids.push(*src);
                        vids.push(*dst);
                    }
                }
                Ok(Frontier::Vertices(vids))
            }

            // ---- projections ----
            (Pipe::Id, Frontier::Vertices(vids)) => {
                Ok(Frontier::Values(vids.into_iter().map(Value::Int).collect()))
            }
            (Pipe::Id, Frontier::Edges(edges)) => Ok(Frontier::Values(
                edges.into_iter().map(|(e, _)| Value::Int(e)).collect(),
            )),
            (Pipe::Label, Frontier::Edges(edges)) => {
                let map = self.edge_scalar_map(&edges, "p.lbl", "")?;
                Ok(Frontier::Values(
                    edges
                        .iter()
                        .filter_map(|(eid, _)| map.get(eid).cloned())
                        .collect(),
                ))
            }
            (Pipe::Values(key), Frontier::Vertices(vids)) => {
                let expr = format!("JSON_VAL(v.attr, {})", sql_str(key));
                let map =
                    self.vertex_scalar_map(&vids, &expr, &format!(" AND {expr} IS NOT NULL"))?;
                Ok(Frontier::Values(
                    vids.iter().filter_map(|v| map.get(v).cloned()).collect(),
                ))
            }
            (Pipe::Values(key), Frontier::Edges(edges)) => {
                let expr = format!("JSON_VAL(p.attr, {})", sql_str(key));
                let map =
                    self.edge_scalar_map(&edges, &expr, &format!(" AND {expr} IS NOT NULL"))?;
                Ok(Frontier::Values(
                    edges
                        .iter()
                        .filter_map(|(eid, _)| map.get(eid).cloned())
                        .collect(),
                ))
            }

            // ---- filters ----
            (Pipe::Has { key, cmp, value }, frontier) => {
                let cond = match value {
                    None => format!("JSON_VAL({{attr}}, {}) IS NOT NULL", sql_str(key)),
                    Some(v) => format!(
                        "JSON_VAL({{attr}}, {}) {} {}",
                        sql_str(key),
                        cmp_sql(*cmp),
                        sql_json(v).map_err(|u| CoreError::Unsupported(u.reason))?
                    ),
                };
                self.filter_frontier(frontier, &cond)
            }
            (Pipe::HasNot { key }, frontier) => {
                let cond = format!("JSON_VAL({{attr}}, {}) IS NULL", sql_str(key));
                self.filter_frontier(frontier, &cond)
            }
            (Pipe::Interval { key, lo, hi }, frontier) => {
                let k = sql_str(key);
                let lo = sql_json(lo).map_err(|u| CoreError::Unsupported(u.reason))?;
                let hi = sql_json(hi).map_err(|u| CoreError::Unsupported(u.reason))?;
                let cond =
                    format!("JSON_VAL({{attr}}, {k}) >= {lo} AND JSON_VAL({{attr}}, {k}) < {hi}");
                self.filter_frontier(frontier, &cond)
            }

            // ---- driver-side pipes ----
            (Pipe::Dedup, frontier) => Ok(frontier.dedup()),
            (Pipe::Range { lo, hi }, frontier) => {
                if *lo < 0 || *hi < *lo {
                    return Err(CoreError::Unsupported("invalid range bounds".into()));
                }
                Ok(frontier.slice(*lo as usize, (*hi - *lo + 1) as usize))
            }
            (Pipe::Count, frontier) => {
                Ok(Frontier::Values(vec![Value::Int(frontier.len() as i64)]))
            }

            (pipe, _) => unreachable!("scatter_supported admitted unsupported pipe {pipe:?}"),
        }
    }

    /// One traversal hop from `vids`, returning `(input position, eid,
    /// neighbor)` rows sorted by `(position, eid)` — the deterministic
    /// merge order. Out-hops probe the local `EA` triple rows; in-hops
    /// unnest the local `IPA` triads and resolve multi-value lists through
    /// `ISA` (both directions of a vertex's adjacency live on its shard).
    fn vertex_hop(
        &self,
        vids: &[i64],
        out: bool,
        labels: &[String],
    ) -> Result<Vec<(usize, i64, i64)>, CoreError> {
        let groups = self.group_vertices(vids);
        let parts = self.fan_out(|i| {
            let (distinct, pos_of) = &groups[i];
            let shard = &self.shards[i];
            let mut rows: Vec<(usize, i64, i64)> = Vec::new();
            for chunk in distinct.chunks(FRONTIER_CHUNK) {
                let found = if out {
                    self.out_probe(shard, chunk, labels)?
                } else {
                    self.in_probe(shard, chunk, labels)?
                };
                for (vid, eid, other) in found {
                    for &pos in &pos_of[&vid] {
                        rows.push((pos, eid, other));
                    }
                }
            }
            Ok(rows)
        })?;
        let mut rows: Vec<(usize, i64, i64)> = parts.into_iter().flatten().collect();
        rows.sort_unstable();
        Ok(rows)
    }

    /// Out-adjacency of `vids` on `shard` via its local EA rows:
    /// `(src, eid, dst)` tuples.
    fn out_probe(
        &self,
        shard: &SqlGraph,
        vids: &[i64],
        labels: &[String],
    ) -> Result<Vec<(i64, i64, i64)>, CoreError> {
        let sql = format!(
            "SELECT p.inv, p.eid, p.outv FROM ea p WHERE p.inv IN ({}){}",
            int_list(vids),
            label_in_list("p.lbl", labels),
        );
        let rel = shard.database().execute(&sql)?;
        Ok(rel
            .rows
            .iter()
            .filter_map(|r| Some((r[0].as_int()?, r[1].as_int()?, r[2].as_int()?)))
            .collect())
    }

    /// In-adjacency of `vids` on `shard` via its local IPA/ISA hash
    /// tables: `(dst, eid, src)` tuples.
    fn in_probe(
        &self,
        shard: &SqlGraph,
        vids: &[i64],
        labels: &[String],
    ) -> Result<Vec<(i64, i64, i64)>, CoreError> {
        let layout = shard.layout();
        let cols = in_buckets_for(&layout, labels);
        let triads: Vec<String> = cols
            .iter()
            .map(|c| format!("(p.lbl{c}, p.eid{c}, p.val{c})"))
            .collect();
        let sql = format!(
            "SELECT p.vid, t.eid, t.val FROM ipa p, TABLE(VALUES {}) AS t(lbl, eid, val) \
             WHERE p.vid IN ({}) AND t.val IS NOT NULL{}",
            triads.join(", "),
            int_list(vids),
            label_in_list("t.lbl", labels),
        );
        let rel = shard.database().execute(&sql)?;
        let mut rows: Vec<(i64, i64, i64)> = Vec::new();
        let mut lists: Vec<(i64, i64)> = Vec::new(); // (dst, valid)
        for r in &rel.rows {
            let dst = r[0].as_int().unwrap_or(-1);
            match (r[1].as_int(), r[2].as_int()) {
                (Some(eid), Some(src)) => rows.push((dst, eid, src)),
                (None, Some(valid)) if valid >= MV_BASE => lists.push((dst, valid)),
                _ => {}
            }
        }
        if !lists.is_empty() {
            let valids: Vec<i64> = lists.iter().map(|&(_, v)| v).collect();
            let mut members: BTreeMap<i64, Vec<(i64, i64)>> = BTreeMap::new();
            for chunk in valids.chunks(FRONTIER_CHUNK) {
                let rel = shard.database().execute(&format!(
                    "SELECT valid, eid, val FROM isa WHERE valid IN ({})",
                    int_list(chunk)
                ))?;
                for r in &rel.rows {
                    if let (Some(valid), Some(eid), Some(src)) =
                        (r[0].as_int(), r[1].as_int(), r[2].as_int())
                    {
                        members.entry(valid).or_default().push((eid, src));
                    }
                }
            }
            for (dst, valid) in lists {
                if let Some(entries) = members.get(&valid) {
                    for &(eid, src) in entries {
                        rows.push((dst, eid, src));
                    }
                }
            }
        }
        Ok(rows)
    }

    /// Per-shard `COUNT` partials for one terminal hop: each shard counts
    /// its frontier slice's adjacency (multi-value list lengths included)
    /// and the driver sums — no frontier materialization.
    fn count_hop(&self, vids: &[i64], out: bool, labels: &[String]) -> Result<i64, CoreError> {
        let groups = self.group_vertices(vids);
        let parts = self.fan_out(|i| {
            let (distinct, pos_of) = &groups[i];
            let shard = &self.shards[i];
            let mut total = 0i64;
            for chunk in distinct.chunks(FRONTIER_CHUNK) {
                let found = if out {
                    self.out_probe(shard, chunk, labels)?
                } else {
                    self.in_probe(shard, chunk, labels)?
                };
                for (vid, ..) in found {
                    total += pos_of[&vid].len() as i64;
                }
            }
            Ok(total)
        })?;
        Ok(parts.into_iter().sum())
    }

    fn count_start(&self, pipe: &Pipe) -> Result<Option<i64>, CoreError> {
        let sql = match pipe {
            Pipe::Vertices { filter: None } => {
                "SELECT COUNT(*) AS val FROM va WHERE vid >= 0".to_string()
            }
            Pipe::Vertices {
                filter: Some((key, value)),
            } => format!(
                "SELECT COUNT(*) AS val FROM va WHERE vid >= 0 AND JSON_VAL(attr, {}) = {}",
                sql_str(key),
                sql_json(value).map_err(|u| CoreError::Unsupported(u.reason))?
            ),
            Pipe::Edges => "SELECT COUNT(*) AS val FROM ea".to_string(),
            _ => return Ok(None),
        };
        let parts = self.fan_out(|i| {
            Ok(self.shards[i]
                .database()
                .execute(&sql)?
                .scalar()
                .and_then(Value::as_int)
                .unwrap_or(0))
        })?;
        Ok(Some(parts.into_iter().sum()))
    }

    /// Group a vertex frontier by owner shard: per shard, the distinct
    /// vids plus each vid's input positions (duplicates preserved).
    #[allow(clippy::type_complexity)]
    fn group_vertices(&self, vids: &[i64]) -> Vec<(Vec<i64>, BTreeMap<i64, Vec<usize>>)> {
        let n = self.shards.len();
        let mut groups: Vec<(Vec<i64>, BTreeMap<i64, Vec<usize>>)> =
            (0..n).map(|_| (Vec::new(), BTreeMap::new())).collect();
        for (pos, &vid) in vids.iter().enumerate() {
            let (distinct, pos_of) = &mut groups[shard_of(vid, n)];
            let slot = pos_of.entry(vid).or_default();
            if slot.is_empty() {
                distinct.push(vid);
            }
            slot.push(pos);
        }
        groups
    }

    /// `eid → (src, dst)` for an edge frontier, queried on owner shards.
    fn edge_endpoints(
        &self,
        edges: &[(i64, usize)],
    ) -> Result<BTreeMap<i64, (i64, i64)>, CoreError> {
        let groups = self.group_edges(edges);
        let parts = self.fan_out(|i| {
            let mut found = Vec::new();
            for chunk in groups[i].chunks(FRONTIER_CHUNK) {
                let rel = self.shards[i].database().execute(&format!(
                    "SELECT p.eid, p.inv, p.outv FROM ea p WHERE p.eid IN ({})",
                    int_list(chunk)
                ))?;
                for r in &rel.rows {
                    if let (Some(eid), Some(src), Some(dst)) =
                        (r[0].as_int(), r[1].as_int(), r[2].as_int())
                    {
                        found.push((eid, (src, dst)));
                    }
                }
            }
            Ok(found)
        })?;
        Ok(parts.into_iter().flatten().collect())
    }

    /// `eid → scalar` over an edge frontier: `expr` is selected from `ea
    /// p` rows, `extra` appended to the WHERE clause.
    fn edge_scalar_map(
        &self,
        edges: &[(i64, usize)],
        expr: &str,
        extra: &str,
    ) -> Result<BTreeMap<i64, Value>, CoreError> {
        let groups = self.group_edges(edges);
        let parts = self.fan_out(|i| {
            let mut found = Vec::new();
            for chunk in groups[i].chunks(FRONTIER_CHUNK) {
                let rel = self.shards[i].database().execute(&format!(
                    "SELECT p.eid, {expr} FROM ea p WHERE p.eid IN ({}){extra}",
                    int_list(chunk)
                ))?;
                for r in &rel.rows {
                    if let Some(eid) = r[0].as_int() {
                        found.push((eid, r[1].clone()));
                    }
                }
            }
            Ok(found)
        })?;
        Ok(parts.into_iter().flatten().collect())
    }

    /// `vid → scalar` over a vertex frontier (`expr` over `va v` rows).
    fn vertex_scalar_map(
        &self,
        vids: &[i64],
        expr: &str,
        extra: &str,
    ) -> Result<BTreeMap<i64, Value>, CoreError> {
        let groups = self.group_vertices(vids);
        let parts = self.fan_out(|i| {
            let mut found = Vec::new();
            for chunk in groups[i].0.chunks(FRONTIER_CHUNK) {
                let rel = self.shards[i].database().execute(&format!(
                    "SELECT v.vid, {expr} FROM va v WHERE v.vid IN ({}){extra}",
                    int_list(chunk)
                ))?;
                for r in &rel.rows {
                    if let Some(vid) = r[0].as_int() {
                        found.push((vid, r[1].clone()));
                    }
                }
            }
            Ok(found)
        })?;
        Ok(parts.into_iter().flatten().collect())
    }

    /// Keep frontier elements whose attribute document satisfies `cond`
    /// (with `{attr}` standing for the JSON column).
    fn filter_frontier(&self, frontier: Frontier, cond: &str) -> Result<Frontier, CoreError> {
        match frontier {
            Frontier::Vertices(vids) => {
                let cond = cond.replace("{attr}", "v.attr");
                let survivors = self.vertex_scalar_map(&vids, "1", &format!(" AND {cond}"))?;
                Ok(Frontier::Vertices(
                    vids.into_iter()
                        .filter(|v| survivors.contains_key(v))
                        .collect(),
                ))
            }
            Frontier::Edges(edges) => {
                let cond = cond.replace("{attr}", "p.attr");
                let survivors = self.edge_scalar_map(&edges, "1", &format!(" AND {cond}"))?;
                Ok(Frontier::Edges(
                    edges
                        .into_iter()
                        .filter(|(e, _)| survivors.contains_key(e))
                        .collect(),
                ))
            }
            Frontier::Values(_) => {
                unreachable!("scatter_supported rejects attribute filters on values")
            }
        }
    }

    fn group_edges(&self, edges: &[(i64, usize)]) -> Vec<Vec<i64>> {
        let n = self.shards.len();
        let mut groups: Vec<Vec<i64>> = (0..n).map(|_| Vec::new()).collect();
        for &(eid, owner) in edges {
            if !groups[owner].contains(&eid) {
                groups[owner].push(eid);
            }
        }
        groups
    }

    // ------------------------------------------------------------------
    // Sharded CRUD
    // ------------------------------------------------------------------

    /// Retry a sharded mutation when it loses a first-updater-wins
    /// conflict; each attempt rebuilds every participant transaction.
    fn retry_sharded<T>(&self, f: impl Fn() -> Result<T, CoreError>) -> Result<T, CoreError> {
        let mut attempts = 0usize;
        loop {
            match f() {
                Err(CoreError::Rel(sqlgraph_rel::Error::TxnConflict(msg))) => {
                    attempts += 1;
                    if attempts >= TXN_RETRIES {
                        return Err(CoreError::Rel(sqlgraph_rel::Error::TxnConflict(msg)));
                    }
                    std::thread::yield_now();
                }
                other => return other,
            }
        }
    }

    fn add_vertex_props(&self, props: &[(String, Json)]) -> Result<i64, CoreError> {
        let _shared = self.mutation_lock.read();
        let vid = self.next_vid.fetch_add(1, Ordering::SeqCst);
        let attr = Value::json(props_to_json(props));
        let owner = self.shard_for(vid);
        owner.retry_txn(|tx| owner.add_vertex_in(tx, vid, &attr))?;
        Ok(vid)
    }

    fn add_edge_props(
        &self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> Result<i64, CoreError> {
        let _shared = self.mutation_lock.read();
        for v in [src, dst] {
            if !self.shard_for(v).vertex_exists_internal(v)? {
                return Err(CoreError::Graph(GraphError::new(format!("no vertex {v}"))));
            }
        }
        let eid = self.next_eid.fetch_add(1, Ordering::SeqCst);
        let attr = Value::json(props_to_json(props));
        let n = self.shards.len();
        let (a, b) = (shard_of(src, n), shard_of(dst, n));
        if a == b {
            let owner = &self.shards[a];
            let layout = owner.layout();
            owner.retry_txn(|tx| owner.add_edge_in(tx, &layout, eid, src, dst, label, &attr))?;
            return Ok(eid);
        }
        // Two-shard atomic commit: EA + out-adjacency on the source's
        // shard, in-adjacency on the target's, one shared timestamp.
        self.retry_sharded(|| {
            let (sa, sb) = (&self.shards[a], &self.shards[b]);
            let mut ta = sa.database().begin();
            let mut tb = sb.database().begin();
            ta.execute_with_params(
                "INSERT INTO ea VALUES (?, ?, ?, ?, ?)",
                &[
                    Value::Int(eid),
                    Value::Int(src),
                    Value::Int(dst),
                    Value::str(label),
                    attr.clone(),
                ],
            )?;
            sa.attach(&mut ta, &sa.layout(), true, src, label, eid, dst)?;
            sb.attach(&mut tb, &sb.layout(), false, dst, label, eid, src)?;
            // Ascending shard order — the global commit_many lock order.
            let parts = if a < b { vec![ta, tb] } else { vec![tb, ta] };
            commit_many(parts)?;
            Ok(())
        })?;
        Ok(eid)
    }

    fn remove_edge_impl(&self, eid: i64) -> Result<(), CoreError> {
        let _shared = self.mutation_lock.read();
        // Locate the edge: its EA row lives on its source's shard.
        let mut found: Option<(usize, i64, i64, String)> = None;
        for (i, s) in self.shards.iter().enumerate() {
            let rel = s.database().execute_with_params(
                "SELECT inv, outv, lbl FROM ea WHERE eid = ?",
                &[Value::Int(eid)],
            )?;
            if let Some(row) = rel.rows.first() {
                found = Some((
                    i,
                    row[0].as_int().unwrap_or(-1),
                    row[1].as_int().unwrap_or(-1),
                    row[2].as_str().unwrap_or("").to_string(),
                ));
                break;
            }
        }
        let Some((a, src, dst, label)) = found else {
            return Err(CoreError::Rel(sqlgraph_rel::Error::NotFound(format!(
                "edge {eid}"
            ))));
        };
        let b = shard_of(dst, self.shards.len());
        if a == b {
            let owner = &self.shards[a];
            let layout = owner.layout();
            return owner.retry_txn(|tx| owner.remove_edge_in(tx, &layout, eid));
        }
        self.retry_sharded(|| {
            let (sa, sb) = (&self.shards[a], &self.shards[b]);
            let mut ta = sa.database().begin();
            let mut tb = sb.database().begin();
            ta.execute_with_params("DELETE FROM ea WHERE eid = ?", &[Value::Int(eid)])?;
            sa.detach(&mut ta, &sa.layout(), true, src, &label, eid)?;
            sb.detach(&mut tb, &sb.layout(), false, dst, &label, eid)?;
            let parts = if a < b { vec![ta, tb] } else { vec![tb, ta] };
            commit_many(parts)?;
            Ok(())
        })
    }

    fn remove_vertex_impl(&self, vid: i64) -> Result<(), CoreError> {
        let _exclusive = self.mutation_lock.write();
        let n = self.shards.len();
        let owner_idx = shard_of(vid, n);
        if !self.shards[owner_idx].vertex_exists_internal(vid)? {
            return Err(CoreError::Graph(GraphError::new(format!(
                "no vertex {vid}"
            ))));
        }
        // Incident edges: out-edges from the owner's EA; in-edges from
        // every shard's EA (each lives on its own source's shard).
        let mut incident: Vec<(i64, i64, i64, String)> = Vec::new();
        for s in &self.shards {
            for key in ["inv", "outv"] {
                let rel = s.database().execute_with_params(
                    &format!("SELECT eid, inv, outv, lbl FROM ea WHERE {key} = ?"),
                    &[Value::Int(vid)],
                )?;
                for row in &rel.rows {
                    incident.push((
                        row[0].as_int().unwrap_or(-1),
                        row[1].as_int().unwrap_or(-1),
                        row[2].as_int().unwrap_or(-1),
                        row[3].as_str().unwrap_or("").to_string(),
                    ));
                }
            }
        }
        incident.sort_by_key(|(e, ..)| *e);
        incident.dedup_by_key(|(e, ..)| *e);

        self.retry_sharded(|| {
            // One transaction per participating shard, committed together
            // under a single timestamp (the sharded §4.5.2 procedure).
            let mut txns: Vec<Option<Txn<'_>>> = (0..n).map(|_| None).collect();
            for (eid, src, dst, label) in &incident {
                let (sa, sb) = (shard_of(*src, n), shard_of(*dst, n));
                tx_for(&self.shards, &mut txns, sa)
                    .execute_with_params("DELETE FROM ea WHERE eid = ?", &[Value::Int(*eid)])?;
                let layout = self.shards[sa].layout();
                self.shards[sa].detach(
                    tx_for(&self.shards, &mut txns, sa),
                    &layout,
                    true,
                    *src,
                    label,
                    *eid,
                )?;
                let layout = self.shards[sb].layout();
                self.shards[sb].detach(
                    tx_for(&self.shards, &mut txns, sb),
                    &layout,
                    false,
                    *dst,
                    label,
                    *eid,
                )?;
            }
            // Negative-ID tombstone on the owner (§4.5.2).
            let marked = Value::Int(deleted_id(vid));
            let tx = tx_for(&self.shards, &mut txns, owner_idx);
            tx.execute_with_params(
                "UPDATE va SET vid = ? WHERE vid = ?",
                &[marked.clone(), Value::Int(vid)],
            )?;
            for pa in ["opa", "ipa"] {
                tx.execute_with_params(
                    &format!("UPDATE {pa} SET vid = ? WHERE vid = ?"),
                    &[marked.clone(), Value::Int(vid)],
                )?;
            }
            // Ascending shard order by construction.
            commit_many(txns.into_iter().flatten().collect())?;
            Ok(())
        })
    }

    fn set_vertex_property_impl(&self, vid: i64, key: &str, value: &Json) -> Result<(), CoreError> {
        let _shared = self.mutation_lock.read();
        self.shard_for(vid)
            .retry_txn(|tx| SqlGraph::set_property_in(tx, "va", "vid", vid, key, value))
    }

    fn set_edge_property_impl(&self, eid: i64, key: &str, value: &Json) -> Result<(), CoreError> {
        let _shared = self.mutation_lock.read();
        for s in &self.shards {
            let rel = s
                .database()
                .execute_with_params("SELECT eid FROM ea WHERE eid = ?", &[Value::Int(eid)])?;
            if !rel.rows.is_empty() {
                return s
                    .retry_txn(|tx| SqlGraph::set_property_in(tx, "ea", "eid", eid, key, value));
            }
        }
        Err(CoreError::Rel(sqlgraph_rel::Error::NotFound(format!(
            "edge {eid}"
        ))))
    }

    // ------------------------------------------------------------------
    // Cross-shard reconciliation (crash repair at open)
    // ------------------------------------------------------------------

    /// Repair commits that a crash left durable on only some shards.
    ///
    /// Each shard's WAL replay is prefix-consistent on its own; a
    /// cross-shard commit appends to the participants' WALs in ascending
    /// shard order, so a crash between appends leaves the commit on a
    /// proper subset. Rules, applied in eid order:
    ///
    /// 1. **Tombstone wins**: an `EA` row either of whose endpoints is
    ///    dead on its owner shard is removed (with both adjacency halves)
    ///    — the vertex delete committed somewhere, so it finishes.
    /// 2. **Roll forward**: an `EA` row whose target shard is missing the
    ///    in-adjacency entry gets it attached — the `EA` row is the
    ///    edge's commit record.
    /// 3. **Roll back**: an in-adjacency entry whose eid has no `EA` row
    ///    anywhere is detached — the edge insert never became durable on
    ///    its owner.
    fn reconcile(&self) -> Result<usize, CoreError> {
        let n = self.shards.len();
        // Every EA row, keyed by eid.
        let mut ea: BTreeMap<i64, (usize, i64, i64, String)> = BTreeMap::new();
        for (i, s) in self.shards.iter().enumerate() {
            let rel = s.database().execute("SELECT eid, inv, outv, lbl FROM ea")?;
            for r in &rel.rows {
                if let (Some(eid), Some(src), Some(dst)) =
                    (r[0].as_int(), r[1].as_int(), r[2].as_int())
                {
                    let lbl = r[3].as_str().unwrap_or("").to_string();
                    ea.insert(eid, (i, src, dst, lbl));
                }
            }
        }
        // Every in-adjacency posting: eid → (shard, dst, label).
        let mut postings: BTreeMap<i64, (usize, i64, String)> = BTreeMap::new();
        for (i, s) in self.shards.iter().enumerate() {
            let layout = s.layout();
            let mut lists: Vec<(i64, String, i64)> = Vec::new(); // (dst, lbl, valid)
            for c in 0..layout.in_buckets {
                let rel = s.database().execute(&format!(
                    "SELECT vid, lbl{c}, eid{c}, val{c} FROM ipa \
                     WHERE vid >= 0 AND lbl{c} IS NOT NULL"
                ))?;
                for r in &rel.rows {
                    let dst = r[0].as_int().unwrap_or(-1);
                    let lbl = r[1].as_str().unwrap_or("").to_string();
                    match (r[2].as_int(), r[3].as_int()) {
                        (Some(eid), _) => {
                            postings.insert(eid, (i, dst, lbl));
                        }
                        (None, Some(valid)) if valid >= MV_BASE => lists.push((dst, lbl, valid)),
                        _ => {}
                    }
                }
            }
            if !lists.is_empty() {
                let rel = s.database().execute("SELECT valid, eid FROM isa")?;
                let mut members: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
                for r in &rel.rows {
                    if let (Some(valid), Some(eid)) = (r[0].as_int(), r[1].as_int()) {
                        members.entry(valid).or_default().push(eid);
                    }
                }
                for (dst, lbl, valid) in lists {
                    for eid in members.get(&valid).cloned().unwrap_or_default() {
                        postings.insert(eid, (i, dst, lbl.clone()));
                    }
                }
            }
        }
        let alive = |v: i64| -> Result<bool, CoreError> {
            self.shards[shard_of(v, n)].vertex_exists_internal(v)
        };
        let mut repairs = 0usize;
        // Rule 1 + 2 over EA rows (BTreeMap iterates in eid order).
        for (&eid, &(owner, src, dst, ref lbl)) in &ea {
            if !alive(src)? || !alive(dst)? {
                let s = &self.shards[owner];
                s.retry_txn(|tx| {
                    tx.execute_with_params("DELETE FROM ea WHERE eid = ?", &[Value::Int(eid)])?;
                    s.detach(tx, &s.layout(), true, src, lbl, eid)
                })?;
                let sd = &self.shards[shard_of(dst, n)];
                sd.retry_txn(|tx| sd.detach(tx, &sd.layout(), false, dst, lbl, eid))?;
                repairs += 1;
                continue;
            }
            let target = shard_of(dst, n);
            let posted = postings
                .get(&eid)
                .is_some_and(|&(i, d, _)| i == target && d == dst);
            if !posted {
                let sd = &self.shards[target];
                sd.retry_txn(|tx| sd.attach(tx, &sd.layout(), false, dst, lbl, eid, src))?;
                repairs += 1;
            }
        }
        // Rule 3 over postings without an EA row.
        for (&eid, &(i, dst, ref lbl)) in &postings {
            if !ea.contains_key(&eid) {
                let s = &self.shards[i];
                s.retry_txn(|tx| s.detach(tx, &s.layout(), false, dst, lbl, eid))?;
                repairs += 1;
            }
        }
        Ok(repairs)
    }
}

// ----------------------------------------------------------------------
// Frontier
// ----------------------------------------------------------------------

/// The elements flowing between scatter-gather steps.
enum Frontier {
    /// Vertex ids (owner shard is a hash of the id).
    Vertices(Vec<i64>),
    /// Edge ids with the shard holding each edge's `EA` row.
    Edges(Vec<(i64, usize)>),
    /// Computed values (terminal projections).
    Values(Vec<Value>),
}

impl Frontier {
    fn len(&self) -> usize {
        match self {
            Frontier::Vertices(v) => v.len(),
            Frontier::Edges(e) => e.len(),
            Frontier::Values(v) => v.len(),
        }
    }

    /// First-occurrence deduplication (deterministic regardless of shard
    /// count, since frontiers are already deterministically ordered).
    fn dedup(self) -> Frontier {
        fn uniq<T: Clone + PartialEq, K: Ord + Clone>(
            items: Vec<T>,
            key: impl Fn(&T) -> K,
        ) -> Vec<T> {
            let mut seen = std::collections::BTreeSet::new();
            items.into_iter().filter(|x| seen.insert(key(x))).collect()
        }
        match self {
            Frontier::Vertices(v) => Frontier::Vertices(uniq(v, |&x| x)),
            Frontier::Edges(e) => Frontier::Edges(uniq(e, |&(eid, _)| eid)),
            Frontier::Values(vals) => {
                let mut seen: Vec<Value> = Vec::new();
                Frontier::Values(
                    vals.into_iter()
                        .filter(|v| {
                            if seen.contains(v) {
                                false
                            } else {
                                seen.push(v.clone());
                                true
                            }
                        })
                        .collect(),
                )
            }
        }
    }

    fn slice(self, skip: usize, take: usize) -> Frontier {
        match self {
            Frontier::Vertices(v) => {
                Frontier::Vertices(v.into_iter().skip(skip).take(take).collect())
            }
            Frontier::Edges(e) => Frontier::Edges(e.into_iter().skip(skip).take(take).collect()),
            Frontier::Values(v) => Frontier::Values(v.into_iter().skip(skip).take(take).collect()),
        }
    }

    fn into_relation(self) -> Relation {
        let rows: Vec<Vec<Value>> = match self {
            Frontier::Vertices(v) => v.into_iter().map(|x| vec![Value::Int(x)]).collect(),
            Frontier::Edges(e) => e
                .into_iter()
                .map(|(eid, _)| vec![Value::Int(eid)])
                .collect(),
            Frontier::Values(vals) => vals.into_iter().map(|v| vec![v]).collect(),
        };
        Relation::new(vec!["val".into()], rows)
    }
}

/// Which pipes the scatter-gather executor handles; anything else falls
/// back to the interpreter. Tracks the element kind like the translator
/// does, so kind-mismatched pipes (e.g. `out` on edges) also fall back.
fn scatter_supported(pipes: &[Pipe]) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum K {
        V,
        E,
        Val,
    }
    let scalar = |v: &Json| matches!(v, Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_));
    let Some(first) = pipes.first() else {
        return false;
    };
    let mut kind = match first {
        Pipe::Vertices { filter: None } | Pipe::VertexById(_) => K::V,
        Pipe::Vertices {
            filter: Some((_, v)),
        } if scalar(v) => K::V,
        Pipe::Edges | Pipe::EdgeById(_) => K::E,
        _ => return false,
    };
    for pipe in &pipes[1..] {
        kind = match (pipe, kind) {
            (Pipe::Out(_) | Pipe::In(_) | Pipe::Both(_), K::V) => K::V,
            (Pipe::OutE(_) | Pipe::InE(_) | Pipe::BothE(_), K::V) => K::E,
            (Pipe::OutV | Pipe::InV | Pipe::BothV, K::E) => K::V,
            (Pipe::Id, K::V | K::E) => K::Val,
            (Pipe::Label, K::E) => K::Val,
            (Pipe::Values(_), K::V | K::E) => K::Val,
            (Pipe::Has { value: None, .. }, K::V | K::E) => kind,
            (Pipe::Has { value: Some(v), .. }, K::V | K::E) if scalar(v) => kind,
            (Pipe::HasNot { .. }, K::V | K::E) => kind,
            (Pipe::Interval { lo, hi, .. }, K::V | K::E) if scalar(lo) && scalar(hi) => kind,
            (Pipe::Dedup | Pipe::Range { .. }, _) => kind,
            (Pipe::Count, _) => K::Val,
            _ => return false,
        };
    }
    true
}

/// `(out?, labels)` for a vertex hop pipe; `out = None` means both
/// directions.
#[allow(clippy::type_complexity)]
fn hop_shape(pipe: &Pipe) -> Option<(Option<bool>, &[String])> {
    match pipe {
        Pipe::Out(l) | Pipe::OutE(l) => Some((Some(true), l)),
        Pipe::In(l) | Pipe::InE(l) => Some((Some(false), l)),
        Pipe::Both(l) | Pipe::BothE(l) => Some((None, l)),
        _ => None,
    }
}

/// Lazily start a transaction on shard `i` (cross-shard mutations only
/// begin transactions on the shards they actually touch).
fn tx_for<'a, 'b>(
    shards: &'a [SqlGraph],
    txns: &'b mut [Option<Txn<'a>>],
    i: usize,
) -> &'b mut Txn<'a> {
    if txns[i].is_none() {
        txns[i] = Some(shards[i].database().begin());
    }
    txns[i].as_mut().expect("just initialized")
}

fn count_relation(total: i64) -> Relation {
    Relation::new(vec!["val".into()], vec![vec![Value::Int(total)]])
}

/// Render ids as a SQL `IN` list body.
fn int_list(ids: &[i64]) -> String {
    let mut s = String::with_capacity(ids.len() * 8);
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&id.to_string());
    }
    s
}

/// IPA bucket columns to unnest for `labels` (all buckets when empty).
fn in_buckets_for(layout: &GraphLayout, labels: &[String]) -> Vec<usize> {
    if labels.is_empty() {
        return (0..layout.in_buckets).collect();
    }
    let mut cols: Vec<usize> = labels.iter().map(|l| layout.in_column(l)).collect();
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// Merge two `(pos, a, b)` row sets sorted by position: for each input
/// position, the first set's rows then the second's (the per-element
/// ordering of the interpreter's `both`).
fn merge_by_pos(
    first: Vec<(usize, i64, i64)>,
    second: Vec<(usize, i64, i64)>,
    positions: usize,
) -> Vec<(usize, i64, i64)> {
    let mut merged = Vec::with_capacity(first.len() + second.len());
    let (mut fi, mut si) = (0, 0);
    for pos in 0..positions {
        while fi < first.len() && first[fi].0 == pos {
            merged.push(first[fi]);
            fi += 1;
        }
        while si < second.len() && second[si].0 == pos {
            merged.push(second[si]);
            si += 1;
        }
    }
    merged
}

/// Project an endpoint map over an edge frontier, preserving order.
fn apply_map<'a, T>(
    edges: &'a [(i64, usize)],
    map: &'a BTreeMap<i64, T>,
    f: impl Fn(&T) -> i64 + 'a,
) -> impl Iterator<Item = i64> + 'a {
    edges
        .iter()
        .filter_map(move |(eid, _)| map.get(eid).map(&f))
}

// ----------------------------------------------------------------------
// Blueprints: the chatty per-call API, routed by shard.
// ----------------------------------------------------------------------

impl Blueprints for ShardedGraph {
    fn vertex_ids(&self) -> Vec<i64> {
        let mut all: Vec<i64> = self.shards.iter().flat_map(|s| s.vertex_ids()).collect();
        all.sort_unstable();
        all
    }

    fn edge_ids(&self) -> Vec<i64> {
        let mut all: Vec<i64> = self.shards.iter().flat_map(|s| s.edge_ids()).collect();
        all.sort_unstable();
        all
    }

    fn vertex_exists(&self, v: i64) -> bool {
        self.shard_for(v).vertex_exists(v)
    }

    fn edge_exists(&self, e: i64) -> bool {
        self.shards.iter().any(|s| s.edge_exists(e))
    }

    fn edges_of(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        let mut out = Vec::new();
        if matches!(dir, Direction::Out | Direction::Both) {
            // Out-edges all live on v's shard, in unsharded row order.
            out.extend(self.shard_for(v).edges_of(v, Direction::Out, labels));
        }
        if matches!(dir, Direction::In | Direction::Both) {
            // In-edges are spread over their sources' shards; merge in eid
            // order (insertion order, matching the unsharded scan).
            let mut ins: Vec<i64> = self
                .shards
                .iter()
                .flat_map(|s| s.edges_of(v, Direction::In, labels))
                .collect();
            ins.sort_unstable();
            out.extend(ins);
        }
        out
    }

    fn adjacent(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        let mut out = Vec::new();
        if matches!(dir, Direction::Out | Direction::Both) {
            out.extend(self.shard_for(v).adjacent(v, Direction::Out, labels));
        }
        if matches!(dir, Direction::In | Direction::Both) {
            // Collect (eid, source) across shards, order by eid.
            let lbl = label_in_list("lbl", labels);
            let mut rows: Vec<(i64, i64)> = Vec::new();
            for s in &self.shards {
                if let Ok(r) = s.database().execute_with_params(
                    &format!("SELECT eid, inv FROM ea WHERE outv = ?{lbl}"),
                    &[Value::Int(v)],
                ) {
                    rows.extend(
                        r.rows
                            .iter()
                            .filter_map(|row| Some((row[0].as_int()?, row[1].as_int()?))),
                    );
                }
            }
            rows.sort_unstable();
            out.extend(rows.into_iter().map(|(_, src)| src));
        }
        out
    }

    fn edge_label(&self, e: i64) -> Option<String> {
        self.shards.iter().find_map(|s| s.edge_label(e))
    }

    fn edge_source(&self, e: i64) -> Option<i64> {
        self.shards.iter().find_map(|s| s.edge_source(e))
    }

    fn edge_target(&self, e: i64) -> Option<i64> {
        self.shards.iter().find_map(|s| s.edge_target(e))
    }

    fn vertex_property(&self, v: i64, key: &str) -> Option<Json> {
        self.shard_for(v).vertex_property(v, key)
    }

    fn edge_property(&self, e: i64, key: &str) -> Option<Json> {
        self.shards.iter().find_map(|s| s.edge_property(e, key))
    }

    fn vertices_by_property(&self, key: &str, value: &Json) -> Vec<i64> {
        let mut all: Vec<i64> = self
            .shards
            .iter()
            .flat_map(|s| s.vertices_by_property(key, value))
            .collect();
        all.sort_unstable();
        all
    }

    fn add_vertex(&self, props: &[(String, Json)]) -> GraphResult<i64> {
        self.add_vertex_props(props).map_err(to_graph_error)
    }

    fn add_edge(
        &self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> GraphResult<i64> {
        self.add_edge_props(src, dst, label, props)
            .map_err(to_graph_error)
    }

    fn remove_vertex(&self, v: i64) -> GraphResult<()> {
        self.remove_vertex_impl(v).map_err(to_graph_error)
    }

    fn remove_edge(&self, e: i64) -> GraphResult<()> {
        self.remove_edge_impl(e).map_err(to_graph_error)
    }

    fn set_vertex_property(&self, v: i64, key: &str, value: &Json) -> GraphResult<()> {
        self.set_vertex_property_impl(v, key, value)
            .map_err(to_graph_error)
    }

    fn set_edge_property(&self, e: i64, key: &str, value: &Json) -> GraphResult<()> {
        self.set_edge_property_impl(e, key, value)
            .map_err(to_graph_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_is_stable_and_total() {
        for n in [1, 2, 3, 4, 8] {
            for vid in [0i64, 1, 42, -7, i64::MAX, i64::MIN] {
                let s = shard_of(vid, n);
                assert!(s < n);
                assert_eq!(s, shard_of(vid, n), "same inputs, same shard");
            }
        }
        assert_eq!(shard_of(123, 1), 0);
    }

    #[test]
    fn sharded_crud_round_trip() {
        let g = ShardedGraph::new_in_memory(4);
        let a = g.add_vertex(&[("name".into(), Json::str("a"))]).unwrap();
        let b = g.add_vertex(&[("name".into(), Json::str("b"))]).unwrap();
        let c = g.add_vertex(&[("name".into(), Json::str("c"))]).unwrap();
        let e1 = g.add_edge(a, b, "knows", &[]).unwrap();
        let _e2 = g.add_edge(b, c, "knows", &[]).unwrap();
        assert_eq!(g.vertex_ids(), vec![a, b, c]);
        assert!(g.edge_exists(e1));
        assert_eq!(g.adjacent(a, Direction::Out, &[]), vec![b]);
        assert_eq!(g.adjacent(b, Direction::In, &[]), vec![a]);
        let out = g.query("g.V.count()").unwrap();
        assert_eq!(out.rows[0][0], Value::Int(3));
        let names = g
            .query("g.v(1).out('knows').values('name')")
            .unwrap()
            .strings();
        assert_eq!(names, ["b"]);
        g.remove_vertex(b).unwrap();
        assert_eq!(g.vertex_ids(), vec![a, c]);
        assert_eq!(g.edge_ids(), Vec::<i64>::new());
        assert_eq!(g.adjacent(a, Direction::Out, &[]), Vec::<i64>::new());
    }
}
