//! CRUD and schema-maintenance tests for `SqlGraph`.

use sqlgraph_core::{GraphData, SchemaConfig, SqlGraph};
use sqlgraph_json::Json;
use sqlgraph_rel::Value;

fn sample() -> SqlGraph {
    let g = SqlGraph::new_in_memory();
    let marko = g
        .add_vertex([("name", "marko".into()), ("age", 29i64.into())])
        .unwrap();
    let vadas = g
        .add_vertex([("name", "vadas".into()), ("age", 27i64.into())])
        .unwrap();
    let lop = g
        .add_vertex([("name", "lop".into()), ("lang", "java".into())])
        .unwrap();
    let josh = g
        .add_vertex([("name", "josh".into()), ("age", 32i64.into())])
        .unwrap();
    g.add_edge(marko, vadas, "knows", [("weight", 0.5f64.into())])
        .unwrap();
    g.add_edge(marko, josh, "knows", [("weight", 1.0f64.into())])
        .unwrap();
    g.add_edge(marko, lop, "created", [("weight", 0.4f64.into())])
        .unwrap();
    g.add_edge(josh, vadas, "likes", [("weight", 0.2f64.into())])
        .unwrap();
    g.add_edge(josh, lop, "created", [("weight", 0.8f64.into())])
        .unwrap();
    g
}

fn sorted_ints(rel: &sqlgraph_rel::Relation) -> Vec<i64> {
    let mut v = rel.int_column();
    v.sort_unstable();
    v
}

#[test]
fn incremental_build_and_query() {
    let g = sample();
    let out = g.query("g.V.count()").unwrap();
    assert_eq!(out.scalar(), Some(&Value::Int(4)));
    let out = g.query("g.v(1).out('knows')").unwrap();
    assert_eq!(sorted_ints(&out), [2, 4]);
    // Multi-valued label went through the OSA migration (marko has two
    // 'knows' edges).
    let osa = g.database().table_len("osa").unwrap();
    assert_eq!(osa, 2);
}

#[test]
fn multi_step_traversal_over_hash_tables() {
    let g = sample();
    let out = g.query("g.v(1).out('knows').out('created')").unwrap();
    assert_eq!(sorted_ints(&out), [3]);
    let out = g.query("g.v(1).out.out.count()").unwrap();
    assert_eq!(out.scalar(), Some(&Value::Int(2))); // josh -> vadas, lop
}

#[test]
fn remove_edge_updates_both_directions() {
    let g = sample();
    // Edge 1 is marko-knows->vadas.
    g.query("g.removeEdge(g.e(1))").unwrap();
    let out = g.query("g.v(1).out('knows')").unwrap();
    assert_eq!(sorted_ints(&out), [4]);
    let out = g.query("g.v(2).in('knows')").unwrap();
    assert!(sorted_ints(&out).is_empty());
    // EA row gone.
    assert_eq!(g.database().table_len("ea").unwrap(), 4);
    // Removing again errors.
    assert!(g.query("g.removeEdge(g.e(1))").is_err());
}

#[test]
fn remove_vertex_marks_and_cleans_neighbors() {
    let g = sample();
    g.query("g.removeVertex(g.v(2))").unwrap(); // vadas
                                                // vadas no longer visible anywhere.
    let out = g.query("g.V.count()").unwrap();
    assert_eq!(out.scalar(), Some(&Value::Int(3)));
    let out = g.query("g.v(1).out('knows')").unwrap();
    assert_eq!(sorted_ints(&out), [4]);
    let out = g.query("g.v(4).out('likes')").unwrap();
    assert!(out.rows.is_empty());
    // Incident EA rows were deleted.
    assert_eq!(g.database().table_len("ea").unwrap(), 3);
    // The logical rows remain (marked negative) until vacuum.
    let marked = g
        .database()
        .execute("SELECT COUNT(*) FROM va WHERE vid < 0")
        .unwrap();
    assert_eq!(marked.scalar(), Some(&Value::Int(1)));
    let removed = g.vacuum().unwrap();
    assert!(removed >= 1);
    let marked = g
        .database()
        .execute("SELECT COUNT(*) FROM va WHERE vid < 0")
        .unwrap();
    assert_eq!(marked.scalar(), Some(&Value::Int(0)));
}

#[test]
fn vertex_ids_are_not_reused_after_delete() {
    let g = sample();
    g.query("g.removeVertex(g.v(4))").unwrap();
    let new_id = g.add_vertex([("name", "peter".into())]).unwrap();
    assert_eq!(new_id, 5);
}

#[test]
fn set_properties() {
    let g = sample();
    g.query("g.v(1).setProperty('age', 30)").unwrap();
    let out = g.query("g.v(1).values('age')").unwrap();
    assert_eq!(out.scalar(), Some(&Value::Int(30)));
    g.query("g.e(1).setProperty('weight', 0.9)").unwrap();
    let out = g
        .database()
        .execute("SELECT JSON_VAL(attr, 'weight') FROM ea WHERE eid = 1")
        .unwrap();
    assert_eq!(out.scalar(), Some(&Value::Double(0.9)));
}

#[test]
fn add_edge_to_missing_vertex_fails_atomically() {
    let g = sample();
    let before_ea = g.database().table_len("ea").unwrap();
    assert!(g.add_edge(1, 999, "knows", []).is_err());
    assert_eq!(g.database().table_len("ea").unwrap(), before_ea);
}

#[test]
fn bulk_load_round_trip() {
    let g = SqlGraph::with_config(SchemaConfig {
        out_buckets: 3,
        in_buckets: 3,
    })
    .unwrap();
    let mut data = GraphData::default();
    for v in 1..=50 {
        data.vertices.push((v, vec![("n".into(), Json::int(v))]));
    }
    let mut eid = 0;
    for v in 1..=49 {
        eid += 1;
        data.edges.push((eid, v, v + 1, "next".into(), vec![]));
        if v % 5 == 0 {
            eid += 1;
            data.edges.push((
                eid,
                v,
                1,
                "home".into(),
                vec![("w".into(), Json::float(0.5))],
            ));
        }
    }
    g.bulk_load(&data).unwrap();
    assert_eq!(
        g.query("g.V.count()").unwrap().scalar(),
        Some(&Value::Int(50))
    );
    // 3-hop chain traversal.
    let out = g
        .query("g.v(1).out('next').out('next').out('next')")
        .unwrap();
    assert_eq!(sorted_ints(&out), [4]);
    // Updates after bulk load keep working (ids continue past loaded max).
    let v = g.add_vertex([("n", Json::int(51))]).unwrap();
    assert_eq!(v, 51);
    let e = g.add_edge(50, 51, "next", []).unwrap();
    assert!(e > eid);
    let out = g.query("g.v(50).out('next')").unwrap();
    assert_eq!(sorted_ints(&out), [51]);
    // Table 3 statistics exist.
    let (out_stats, in_stats) = g.load_stats().unwrap();
    assert_eq!(out_stats.primary_rows, 49); // 49 vertices with out-edges
    assert!(in_stats.primary_rows > 0);
}

#[test]
fn spill_rows_appear_when_buckets_overflow() {
    // 1 bucket forces every second co-occurring label to spill.
    let g = SqlGraph::with_config(SchemaConfig {
        out_buckets: 1,
        in_buckets: 1,
    })
    .unwrap();
    let a = g.add_vertex([]).unwrap();
    let b = g.add_vertex([]).unwrap();
    let c = g.add_vertex([]).unwrap();
    g.add_edge(a, b, "x", []).unwrap();
    g.add_edge(a, c, "y", []).unwrap(); // same column → spill row
    let spills = g
        .database()
        .execute("SELECT COUNT(*) FROM opa WHERE spill = 1")
        .unwrap();
    assert_eq!(spills.scalar(), Some(&Value::Int(1)));
    // Traversal still finds both.
    let out = g.query("g.v(1).out.dedup()").unwrap();
    assert_eq!(sorted_ints(&out), [2, 3]);
}

#[test]
fn wal_backed_store_recovers() {
    let mut path = std::env::temp_dir();
    path.push(format!("sqlgraph-core-recover-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let g = SqlGraph::open(&path, SchemaConfig::default()).unwrap();
        let a = g.add_vertex([("name", "a".into())]).unwrap();
        let b = g.add_vertex([("name", "b".into())]).unwrap();
        g.add_edge(a, b, "knows", []).unwrap();
    }
    {
        let g = SqlGraph::open(&path, SchemaConfig::default()).unwrap();
        assert_eq!(
            g.query("g.V.count()").unwrap().scalar(),
            Some(&Value::Int(2))
        );
        assert_eq!(g.query("g.v(1).out('knows')").unwrap().int_column(), [2]);
        // Counters resumed: new ids do not collide.
        let c = g.add_vertex([]).unwrap();
        assert_eq!(c, 3);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn translation_is_used_not_fallback() {
    let g = sample();
    g.query("g.V.has('age', T.gt, 28).out('created').dedup().count()")
        .unwrap();
    assert_eq!(g.fallback_count(), 0);
    // Dynamic loop falls back.
    g.query("g.v(1).out.loop(1){it.weight < 2}").unwrap();
    assert_eq!(g.fallback_count(), 1);
}

#[test]
fn deleted_vertices_never_returned() {
    let g = sample();
    g.query("g.removeVertex(g.v(3))").unwrap(); // lop
    for q in [
        "g.V",
        "g.V.has('name','lop')",
        "g.v(3)",
        "g.v(1).out('created')",
        "g.v(4).out('created')",
    ] {
        let out = g.query(q).unwrap();
        assert!(
            !out.int_column().contains(&3),
            "deleted vertex leaked from {q}"
        );
    }
}

#[test]
fn explain_shows_index_usage() {
    let g = sample();
    g.create_vertex_property_index("name").unwrap();
    let plan = g
        .explain_query("g.V.has('name','marko').out('knows')")
        .unwrap()
        .strings()
        .join("\n");
    // The GraphQuery start merges into the scan... the has() filter joins
    // va; either way the EA hop must probe an index.
    assert!(plan.contains("index"), "expected index access:\n{plan}");
}

#[test]
fn property_index_accelerated_start() {
    let g = sample();
    g.create_vertex_property_index("name").unwrap();
    // GraphQuery start uses the functional index (visible in EXPLAIN).
    let plan = g
        .explain_query("g.V('name','marko').out('created')")
        .unwrap();
    let text = plan.strings().join("\n");
    assert!(
        text.contains("va_attr_name"),
        "expected functional index in plan:\n{text}"
    );
    // And produces correct results.
    let out = g
        .query("g.V('name','marko').out('created').values('name')")
        .unwrap();
    assert_eq!(out.strings(), ["lop"]);
}

#[test]
fn vacuum_reclaims_orphaned_secondary_lists() {
    let g = sample();
    // marko's two 'knows' edges live in an OSA list.
    assert_eq!(g.database().table_len("osa").unwrap(), 2);
    g.query("g.removeVertex(g.v(1))").unwrap(); // marko
                                                // The list is unreferenced once marko's OPA row is vacuumed.
    g.vacuum().unwrap();
    assert_eq!(g.database().table_len("osa").unwrap(), 0);
    // Remaining graph still queryable and consistent.
    let out = g.query("g.v(4).out('created').values('name')").unwrap();
    assert_eq!(out.strings(), ["lop"]);
}

// ------------------------------------------------------ graph transactions --

/// A multi-step graph transaction commits atomically: none of its
/// vertices, edges, or property writes are visible to queries until
/// `commit`, and all of them are after.
#[test]
fn graph_transaction_commits_atomically() {
    let g = sample();
    let before = g.query("g.V().count()").unwrap().int_column()[0];

    let mut tx = g.transaction();
    let a = tx
        .add_vertex(&[("name".to_string(), Json::str("peter"))])
        .unwrap();
    let b = tx
        .add_vertex(&[("name".to_string(), Json::str("ripple"))])
        .unwrap();
    let e = tx.add_edge(a, b, "created", &[]).unwrap();
    tx.set_vertex_property(a, "age", &Json::int(35)).unwrap();
    tx.set_edge_property(e, "weight", &Json::float(0.9))
        .unwrap();
    tx.commit().unwrap();

    assert_eq!(
        g.query("g.V().count()").unwrap().int_column()[0],
        before + 2
    );
    let names = g.query(&format!("g.v({a}).out('created').values('name')"));
    assert_eq!(names.unwrap().strings(), ["ripple"]);
    assert_eq!(
        g.query(&format!("g.v({a}).values('age')"))
            .unwrap()
            .int_column(),
        [35]
    );
}

/// Rolling back (or dropping) a graph transaction leaves no trace — the
/// §4.5.2 vertex delete included: its incident-edge removals and
/// negative-ID marks must all be undone.
#[test]
fn graph_transaction_rolls_back_all_steps() {
    let g = sample();
    let snapshot = |g: &SqlGraph| {
        let mut t = (
            g.query("g.V().count()").unwrap().int_column()[0],
            g.query("g.E().count()").unwrap().int_column()[0],
            g.query("g.v(1).out().values('name')").unwrap().strings(),
        );
        t.2.sort();
        t
    };
    let before = snapshot(&g);

    let mut tx = g.transaction();
    let v = tx
        .add_vertex(&[("name".to_string(), Json::str("doomed"))])
        .unwrap();
    tx.add_edge(1, v, "knows", &[]).unwrap();
    // Vertex delete inside the transaction: removes incident edges and
    // marks the vertex rows with the negative-ID tombstone.
    tx.remove_vertex(3).unwrap();
    tx.set_vertex_property(1, "age", &Json::int(99)).unwrap();
    tx.rollback();

    assert_eq!(snapshot(&g), before, "rollback left residue");
    assert_eq!(g.query("g.v(1).values('age')").unwrap().int_column(), [29]);
    // The store still accepts new work after the rollback.
    let v2 = g.add_vertex([("name", "fresh".into())]).unwrap();
    assert!(v2 > v, "vertex ids must not be reused after rollback");
}

/// In-transaction reads observe the transaction's own writes, while
/// autocommit readers on other "connections" never see them pre-commit.
#[test]
fn graph_transaction_reads_its_own_writes() {
    let g = sample();
    let mut tx = g.transaction();
    let v = tx
        .add_vertex(&[("name".to_string(), Json::str("temp"))])
        .unwrap();
    tx.add_edge(1, v, "knows", &[]).unwrap();
    let rel = tx
        .sql_with_params(
            "SELECT JSON_VAL(attr, 'name') FROM va WHERE vid = ?",
            &[Value::Int(v)],
        )
        .unwrap();
    assert_eq!(rel.rows[0][0], Value::str("temp"));
    let out = tx.query("g.v(1).out('knows').id()").unwrap();
    assert!(
        out.int_column().contains(&v),
        "snapshot must include own writes"
    );
    tx.commit().unwrap();
    assert!(g
        .query("g.v(1).out('knows').id()")
        .unwrap()
        .int_column()
        .contains(&v));
}
