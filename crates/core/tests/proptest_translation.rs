//! Property-based differential testing: arbitrary generated pipelines over
//! arbitrary graphs — the SQL translation must agree with the interpreter
//! oracle on every one.

use proptest::prelude::*;
use sqlgraph_core::{GraphData, SchemaConfig, SqlGraph};
use sqlgraph_gremlin::ast::{BackTarget, Closure, Cmp, GremlinStatement, Pipe, Pipeline};
use sqlgraph_gremlin::{interp, Blueprints, Elem, MemGraph};
use sqlgraph_json::Json;
use sqlgraph_rel::Value;

/// One edge: `(eid, src, dst, label, props)`.
type TestEdge = (i64, i64, i64, String, Vec<(String, Json)>);

/// A small random graph: vertices with `name`/`age`, labeled edges.
#[derive(Debug, Clone)]
struct TestGraph {
    vertices: Vec<(i64, Vec<(String, Json)>)>,
    edges: Vec<TestEdge>,
}

fn arb_graph() -> impl Strategy<Value = TestGraph> {
    (3usize..10, 0usize..25).prop_flat_map(|(nv, ne)| {
        let vertex_props = prop::collection::vec(
            (prop::sample::select(vec!["a", "b", "c"]), 0i64..5),
            nv..=nv,
        );
        let edges = prop::collection::vec(
            (
                1..=nv as i64,
                1..=nv as i64,
                prop::sample::select(vec!["knows", "likes", "made"]),
            ),
            ne..=ne,
        );
        (vertex_props, edges).prop_map(|(vp, es)| TestGraph {
            vertices: vp
                .into_iter()
                .enumerate()
                .map(|(i, (name, age))| {
                    (
                        i as i64 + 1,
                        vec![
                            ("name".to_string(), Json::str(name)),
                            ("age".to_string(), Json::int(age)),
                        ],
                    )
                })
                .collect(),
            edges: es
                .into_iter()
                .enumerate()
                .map(|(i, (s, d, l))| (i as i64 + 1, s, d, l.to_string(), vec![]))
                .collect(),
        })
    })
}

fn arb_pipe() -> impl Strategy<Value = Pipe> {
    let label = prop::sample::select(vec!["knows", "likes", "made"]);
    let labels = || {
        prop::collection::vec(label.clone(), 0..2)
            .prop_map(|ls| ls.into_iter().map(str::to_string).collect::<Vec<_>>())
    };
    prop_oneof![
        labels().prop_map(Pipe::Out),
        labels().prop_map(Pipe::In),
        labels().prop_map(Pipe::Both),
        Just(Pipe::Dedup),
        Just(Pipe::Id),
        (0i64..3, 2i64..6).prop_map(|(lo, hi)| Pipe::Range { lo, hi: lo + hi }),
        prop::sample::select(vec!["name", "age", "zzz"]).prop_map(|k| Pipe::Has {
            key: k.to_string(),
            cmp: Cmp::Eq,
            value: None,
        }),
        (prop::sample::select(vec!["a", "b", "c"])).prop_map(|v| Pipe::Has {
            key: "name".to_string(),
            cmp: Cmp::Eq,
            value: Some(Json::str(v)),
        }),
        (0i64..5).prop_map(|v| Pipe::Has {
            key: "age".to_string(),
            cmp: Cmp::Gt,
            value: Some(Json::int(v)),
        }),
        Just(Pipe::Values("name".to_string())),
        Just(Pipe::Filter(Closure::Compare(
            Cmp::Lt,
            Box::new(Closure::Prop("age".to_string())),
            Box::new(Closure::Literal(Json::int(3))),
        ))),
        Just(Pipe::Back(BackTarget::Steps(1))),
        Just(Pipe::SimplePath),
        Just(Pipe::Path),
    ]
}

fn arb_pipeline() -> impl Strategy<Value = Pipeline> {
    let start = prop_oneof![
        Just(Pipe::Vertices { filter: None }),
        (1i64..8).prop_map(Pipe::VertexById),
    ];
    (
        start,
        prop::collection::vec(arb_pipe(), 0..5),
        any::<bool>(),
    )
        .prop_map(|(start, mut pipes, count)| {
            pipes.insert(0, start);
            if count {
                pipes.push(Pipe::Count);
            }
            Pipeline { pipes }
        })
}

/// Pipelines whose semantics depend on element kinds the generator cannot
/// track (e.g. `values` after `id`) fail kind checks in both engines; only
/// compare when the oracle accepts the pipeline.
fn oracle_result(mem: &MemGraph, p: &Pipeline) -> Option<Vec<String>> {
    interp::eval(mem, p).ok().map(canon_elems)
}

fn canon_elems(elems: Vec<Elem>) -> Vec<String> {
    let mut out: Vec<String> = elems.iter().map(|e| format!("{:?}", e.to_json())).collect();
    out.sort();
    out
}

fn canon_rel(rel: &sqlgraph_rel::Relation) -> Vec<String> {
    let mut out: Vec<String> = rel
        .rows
        .iter()
        .map(|r| format!("{:?}", value_to_json(&r[0])))
        .collect();
    out.sort();
    out
}

fn value_to_json(v: &Value) -> Json {
    sqlgraph_core::value_to_json(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn translation_matches_interpreter(g in arb_graph(), p in arb_pipeline()) {
        // Range pipes depend on input order, which neither engine defines;
        // only compare cardinality for those.
        let has_range = p.pipes.iter().any(|x| matches!(x, Pipe::Range { .. }));

        let mem = MemGraph::new();
        for (vid, props) in &g.vertices {
            let got = mem.add_vertex(props).unwrap();
            prop_assert_eq!(got, *vid);
        }
        for (eid, s, d, l, props) in &g.edges {
            let got = mem.add_edge(*s, *d, l, props).unwrap();
            prop_assert_eq!(got, *eid);
        }
        let Some(want) = oracle_result(&mem, &p) else {
            return Ok(()); // kind-invalid pipeline; both sides reject
        };

        let sql = SqlGraph::with_config(SchemaConfig { out_buckets: 2, in_buckets: 2 }).unwrap();
        sql.bulk_load(&GraphData { vertices: g.vertices.clone(), edges: g.edges.clone() }).unwrap();

        // Interpreter over SqlGraph's Blueprints API must agree exactly.
        let stmt = GremlinStatement::Query(p.clone());
        let chatty = canon_elems(interp::execute(&sql, &stmt).unwrap());
        prop_assert_eq!(&chatty, &want, "chatty mode diverged on {:?}", p);

        // Translated SQL (when the pipeline is translatable) must agree.
        let layout = sql.layout();
        if let Ok(text) = sqlgraph_core::translate(&p, &layout) {
            let rel = sql.database().execute(&text);
            let rel = match rel {
                Ok(r) => r,
                Err(e) => return Err(TestCaseError::fail(format!(
                    "generated SQL failed on {p:?}: {e}\n{text}"
                ))),
            };
            if has_range {
                prop_assert_eq!(rel.rows.len(), want.len(), "cardinality diverged on {:?}", p);
            } else {
                prop_assert_eq!(canon_rel(&rel), want, "translation diverged on {:?}\n{}", p, text);
            }
        }
    }
}
