//! Crash-consistency for the two-shard commit path: inject a crash at
//! every file-system operation inside a cross-shard mutation (edge insert,
//! edge delete, vertex delete with cross-shard incident edges), recover,
//! reopen the sharded store — reopening runs cross-shard reconciliation —
//! and assert both shards land in a commit-prefix-consistent state: every
//! committed-before-the-crash fact survives, and the interrupted mutation
//! is either fully applied on both shards or fully absent from both. No
//! half-applied cross-shard edge (an EA row on the source's shard without
//! the matching in-posting on the target's shard, or vice versa) may
//! survive recovery.

use sqlgraph_core::{shard_of, SchemaConfig, ShardedGraph};
use sqlgraph_gremlin::Blueprints;
use sqlgraph_json::Json;
use sqlgraph_rel::{Fault, FaultKind, SimFs, Value};
use std::sync::Arc;

const SHARDS: usize = 2;

fn config() -> SchemaConfig {
    SchemaConfig {
        out_buckets: 3,
        in_buckets: 3,
    }
}

fn open(fs: &SimFs) -> ShardedGraph {
    let g = ShardedGraph::open_with_vfs("g", SHARDS, config(), Arc::new(fs.clone())).unwrap();
    g.set_sync_on_commit(true);
    g
}

/// Four vertices plus two committed cross-shard edges, so recovery always
/// has a durable prefix to preserve.
fn seed(g: &ShardedGraph) {
    for v in 1..=4i64 {
        let props = vec![("name".to_string(), Json::str(format!("v{v}")))];
        assert_eq!(g.add_vertex(&props).unwrap(), v);
    }
    // 1 and 2 hash to different shards at N=2 (pinned by the partitioner
    // tests); assert rather than assume for 3 and 4.
    assert_ne!(shard_of(1, SHARDS), shard_of(2, SHARDS));
    assert_eq!(g.add_edge(1, 2, "knows", &[]).unwrap(), 1);
    assert_eq!(g.add_edge(2, 3, "knows", &[]).unwrap(), 2);
}

fn ids(g: &ShardedGraph, query: &str) -> Vec<i64> {
    g.query(query)
        .unwrap()
        .rows
        .into_iter()
        .map(|r| match r[0] {
            Value::Int(i) => i,
            ref other => panic!("expected id, got {other:?}"),
        })
        .collect()
}

/// Global two-sided consistency: the EA side (owner shards of each edge's
/// source) and the IPA/ISA side (shards of each edge's target) must
/// describe the same edge set, and every endpoint must be a live vertex.
fn assert_consistent(g: &ShardedGraph) {
    let vertices = ids(g, "g.V");
    let edges = ids(g, "g.E");
    // Out-expansion reads EA rows, in-expansion reads in-postings; a
    // half-applied cross-shard edge breaks this equality.
    let out_total = ids(g, "g.V.out").len();
    let in_total = ids(g, "g.V.in").len();
    assert_eq!(
        out_total,
        edges.len(),
        "EA rows vs edge list diverged after recovery"
    );
    assert_eq!(
        in_total,
        edges.len(),
        "in-postings vs edge list diverged after recovery"
    );
    // Same sources whether read from EA (g.E.outV) or from the reverse
    // index (g.V.in).
    let mut from_ea = ids(g, "g.E.outV");
    let mut from_ipa = ids(g, "g.V.in");
    from_ea.sort_unstable();
    from_ipa.sort_unstable();
    assert_eq!(from_ea, from_ipa, "EA and in-posting sides disagree");
    // No dangling endpoints.
    for v in ids(g, "g.E.bothV") {
        assert!(
            vertices.contains(&v),
            "edge endpoint {v} is not a live vertex"
        );
    }
}

/// Re-runs `mutate` against a fresh store for every fault point inside its
/// file-system op window, recovering and reopening each time. `check`
/// receives the reopened store and whether the mutation call succeeded.
fn crash_sweep(
    mutate: impl Fn(&ShardedGraph) -> bool,
    must_survive_vertices: &[i64],
    must_survive_edges: &[i64],
    check: impl Fn(&ShardedGraph, bool, u64),
) -> u64 {
    // Fault-free reference run bounds the op window.
    let fs = SimFs::new();
    let start;
    let end;
    {
        let g = open(&fs);
        seed(&g);
        start = fs.op_count();
        assert!(mutate(&g), "reference run must succeed");
        end = fs.op_count();
    }
    assert!(end > start, "mutation performed no file-system ops");

    for at_op in start..end {
        let fs = SimFs::new();
        {
            let g = open(&fs);
            seed(&g);
            assert_eq!(fs.op_count(), start, "seed is not deterministic");
            fs.schedule_fault(Fault {
                at_op,
                kind: FaultKind::Crash { keep_tail: 0 },
            });
            let ok = mutate(&g);
            drop(g);
            fs.recover();
            // Reopen: replays WALs and reconciles. The durable prefix
            // always survives — sync-on-commit means every pre-crash
            // commit was fsynced.
            let g = open(&fs);
            let vertices = ids(&g, "g.V");
            for v in must_survive_vertices {
                assert!(vertices.contains(v), "seeded vertex {v} lost at {at_op}");
            }
            let edges = ids(&g, "g.E");
            for e in must_survive_edges {
                assert!(edges.contains(e), "seeded edge {e} lost at {at_op}");
            }
            assert_consistent(&g);
            check(&g, ok, at_op);
        }
    }
    end - start
}

#[test]
fn cross_shard_edge_insert_is_atomic_under_crash() {
    let window = crash_sweep(
        |g| g.add_edge(1, 2, "likes", &[]).is_ok(),
        &[1, 2, 3, 4],
        &[1, 2],
        |g, ok, at_op| {
            // The interrupted edge is all-or-nothing across both shards:
            // visible from the source's shard (EA) iff visible from the
            // target's shard (in-postings).
            let out = ids(g, "g.v(1).out('likes')").contains(&2);
            let inn = ids(g, "g.v(2).in('likes')").contains(&1);
            assert_eq!(out, inn, "half-applied cross-shard edge at op {at_op}");
            if ok {
                assert!(out, "edge reported committed but lost at op {at_op}");
            }
        },
    );
    assert!(window >= 4, "two-shard commit touched only {window} fs ops");
}

#[test]
fn cross_shard_edge_delete_is_atomic_under_crash() {
    crash_sweep(
        |g| g.remove_edge(1).is_ok(),
        &[1, 2, 3, 4],
        &[2],
        |g, ok, at_op| {
            let out = ids(g, "g.v(1).out('knows')").contains(&2);
            let inn = ids(g, "g.v(2).in('knows')").contains(&1);
            assert_eq!(out, inn, "half-deleted cross-shard edge at op {at_op}");
            let listed = ids(g, "g.E").contains(&1);
            assert_eq!(listed, out, "edge list and adjacency disagree at {at_op}");
            if ok {
                assert!(
                    !listed,
                    "delete reported committed but edge back at {at_op}"
                );
            }
        },
    );
}

#[test]
fn vertex_delete_with_cross_shard_edges_is_atomic_under_crash() {
    // Deleting vertex 2 must take edges 1 (in from shard of 1) and
    // 2 (out to shard of 3) with it, on every involved shard.
    crash_sweep(
        |g| g.remove_vertex(2).is_ok(),
        &[1, 3, 4],
        &[],
        |g, ok, at_op| {
            let alive = ids(g, "g.V").contains(&2);
            let edges = ids(g, "g.E");
            if alive {
                assert!(
                    edges.contains(&1) && edges.contains(&2),
                    "vertex 2 alive but incident edges gone at op {at_op}"
                );
            } else {
                assert!(
                    !edges.contains(&1) && !edges.contains(&2),
                    "vertex 2 deleted but incident edges survive at op {at_op}"
                );
            }
            if ok {
                assert!(
                    !alive,
                    "delete reported committed but vertex back at {at_op}"
                );
            }
        },
    );
}
