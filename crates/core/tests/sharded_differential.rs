//! Differential testing for the hash-partitioned store: every query in the
//! corpus must return the **same bytes** from `ShardedGraph` at N = 1, 2,
//! and 4 shards, at DOP 1 and 4, from the scatter-gather executor and from
//! the interpreter over the sharded Blueprints API — and the same multiset
//! as the unsharded `SqlGraph` engine and the MemGraph oracle. CRUD
//! sequences applied through the sharded Blueprints API must leave all
//! stores agreeing, including on assigned ids.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlgraph_core::{GraphData, SchemaConfig, ShardedGraph, SqlGraph};
use sqlgraph_gremlin::{interp, parse_query, Blueprints, Elem, MemGraph};
use sqlgraph_json::Json;
use sqlgraph_rel::Value;

/// Canonical rendering of a result multiset for cross-engine comparison.
fn canon_values(rows: &[Vec<Value>]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| render_value(r.first().expect("one column")))
        .collect();
    out.sort();
    out
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i:{i}"),
        Value::Double(f) => format!("f:{f}"),
        Value::Str(s) => format!("s:{s}"),
        Value::Bool(b) => format!("b:{b}"),
        Value::Null => "null".into(),
        // The translator materializes arrays as Value::Array, the
        // interpreter fallback as Value::Json(Json::Array); render both
        // forms identically so the canonical comparison sees through it.
        Value::Json(j) => render_json(j),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("a:[{}]", inner.join(","))
        }
    }
}

fn canon_elems(elems: &[Elem]) -> Vec<String> {
    let mut out: Vec<String> = elems
        .iter()
        .map(|e| match e {
            Elem::Vertex(v) | Elem::Edge(v) => format!("i:{v}"),
            Elem::Value(j) => render_json(j),
        })
        .collect();
    out.sort();
    out
}

fn render_json(j: &Json) -> String {
    match j {
        Json::Num(n) if n.is_int() => format!("i:{}", n.as_i64().unwrap()),
        Json::Num(n) => format!("f:{}", n.as_f64()),
        Json::Str(s) => format!("s:{s}"),
        Json::Bool(b) => format!("b:{b}"),
        Json::Null => "null".into(),
        Json::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_json).collect();
            format!("a:[{}]", inner.join(","))
        }
        other => format!("j:{other}"),
    }
}

/// The same query corpus the unsharded differential test runs.
const CORPUS: &[&str] = &[
    "g.V",
    "g.E",
    "g.v(1)",
    "g.v(99)",
    "g.e(3)",
    "g.V.count()",
    "g.E.count()",
    "g.v(1).out",
    "g.v(1).out('knows')",
    "g.v(1).out('knows','created')",
    "g.v(3).in",
    "g.v(2).in('likes')",
    "g.v(4).both",
    "g.v(1).outE",
    "g.v(1).outE('knows')",
    "g.v(2).inE",
    "g.v(4).bothE",
    "g.v(1).outE('knows').inV",
    "g.e(4).outV",
    "g.e(4).inV",
    "g.e(4).bothV",
    "g.v(1).out.out",
    "g.v(1).out.out.count()",
    "g.v(1).out.in.dedup()",
    "g.V.has('age')",
    "g.V.hasNot('age')",
    "g.V.has('age', 29)",
    "g.V.has('age', T.gt, 28)",
    "g.V.has('age', T.lte, 29)",
    "g.V.has('age', T.neq, 29)",
    "g.V.has('name', 'lop')",
    "g.V('name','lop')",
    "g.V('name','lop').in('created')",
    "g.V.filter{it.age > 27 && it.age < 32}",
    "g.V.filter{it.name == 'lop' || it.name == 'vadas'}",
    "g.V.filter{it.name.contains('a')}",
    "g.V.interval('age', 27, 32)",
    "g.V.out.dedup()",
    "g.V.out.dedup().count()",
    "g.v(1).out('knows').values('name')",
    "g.v(1).values('age')",
    "g.v(1).outE.label.dedup()",
    "g.v(2).id",
    "g.E.has('weight', T.gte, 0.8)",
    "g.E.has('weight', T.lt, 0.5).inV",
    "g.v(1).out('knows').out.path",
    "g.v(1).out.both.simplePath.count()",
    "g.V.as('x').out('created').back('x')",
    "g.V.out('created').back(1)",
    "g.V.as('x').out('created').back('x').values('name')",
    "g.v(1).aggregate(x).out('knows').out.except(x)",
    "g.v(2).aggregate(x).in('knows').out.retain(x)",
    "g.V.and(_().out('knows'), _().out('created'))",
    "g.V.or(_().out('knows'), _().out('created'))",
    "g.v(1).copySplit(_().out('knows'), _().out('created')).fairMerge",
    "g.v(1).out.loop(1){it.loops < 2}",
    "g.v(1).out.loop(1){it.loops < 3}.count()",
    "g.V.as('s').out.loop('s'){it.loops < 2}.dedup()",
    "g.V.groupBy{it.name}{it}.count()",
    "g.V.table(t1).out.count()",
    "g.V.filter{it.tag=='w'}.both.dedup().count()",
    "g.V.has('age').ifThenElse{it.age > 28}{it.name}{it.age}",
    // Sharded-specific shapes: multi-source frontiers that force
    // scatter-gather position bookkeeping and cross-shard merges.
    "g.V.out",
    "g.V.in",
    "g.V.both",
    "g.V.outE",
    "g.V.inE",
    "g.V.bothE",
    "g.V.out.count()",
    "g.V.in.count()",
    "g.V.both.count()",
    "g.V.outE.count()",
    "g.V.out.values('name')",
    "g.V.both.has('age', T.gt, 27)",
    "g.E.outV",
    "g.E.inV",
    "g.E.bothV",
    "g.E.label",
    "g.E.values('weight')",
    "g.V.out.out.dedup()",
    "g.V.range(1, 3)",
    "g.V.out.range(0, 2)",
];

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn config() -> SchemaConfig {
    SchemaConfig {
        out_buckets: 3,
        in_buckets: 3,
    }
}

fn build_all(data: &GraphData) -> (SqlGraph, Vec<ShardedGraph>, MemGraph) {
    let sql = SqlGraph::with_config(config()).unwrap();
    sql.bulk_load(data).unwrap();
    let sharded = SHARD_COUNTS
        .iter()
        .map(|&n| {
            let g = ShardedGraph::with_config(n, config()).unwrap();
            g.bulk_load(data).unwrap();
            g
        })
        .collect();
    let mem = MemGraph::new();
    for (vid, props) in &data.vertices {
        assert_eq!(mem.add_vertex(props).unwrap(), *vid);
    }
    for (eid, src, dst, label, props) in &data.edges {
        assert_eq!(mem.add_edge(*src, *dst, label, props).unwrap(), *eid);
    }
    (sql, sharded, mem)
}

/// The core contract, per query:
/// 1. every shard count returns byte-identical rows (same values, same
///    order) at DOP 1 and DOP 4;
/// 2. the scatter-gather executor is byte-identical to the interpreter
///    over the sharded Blueprints API;
/// 3. the result multiset equals the unsharded engine's and MemGraph's.
fn check_query(sql: &SqlGraph, sharded: &[ShardedGraph], mem: &MemGraph, query: &str) {
    let pipeline = parse_query(query).unwrap();
    let oracle = canon_elems(&interp::eval(mem, &pipeline).unwrap());
    let unsharded = sql
        .query(query)
        .unwrap_or_else(|e| panic!("unsharded failed on {query}: {e}"));
    assert_eq!(
        canon_values(&unsharded.rows),
        oracle,
        "unsharded diverged from MemGraph on {query}"
    );

    let mut baseline: Option<Vec<Vec<Value>>> = None;
    for g in sharded {
        for dop in [1usize, 4] {
            g.set_parallelism(dop);
            let rows = g
                .query(query)
                .unwrap_or_else(|e| panic!("{} shards failed on {query}: {e}", g.shard_count()))
                .rows;
            match &baseline {
                None => {
                    assert_eq!(
                        canon_values(&rows),
                        oracle,
                        "sharded diverged from MemGraph on {query}"
                    );
                    baseline = Some(rows);
                }
                Some(base) => assert_eq!(
                    base,
                    &rows,
                    "{} shards at DOP {dop} not byte-identical on {query}",
                    g.shard_count()
                ),
            }
        }
        g.set_parallelism(0);
        let interpreted = g
            .query_interpreted(query)
            .unwrap_or_else(|e| panic!("interpreter failed on {query}: {e}"))
            .rows;
        assert_eq!(
            baseline.as_ref().unwrap(),
            &interpreted,
            "{} shards: scatter executor vs interpreter order on {query}",
            g.shard_count()
        );
    }
}

fn figure2_graph() -> GraphData {
    GraphData {
        vertices: vec![
            (
                1,
                vec![
                    ("name".into(), "marko".into()),
                    ("age".into(), Json::int(29)),
                ],
            ),
            (
                2,
                vec![
                    ("name".into(), "vadas".into()),
                    ("age".into(), Json::int(27)),
                ],
            ),
            (
                3,
                vec![
                    ("name".into(), "lop".into()),
                    ("lang".into(), "java".into()),
                ],
            ),
            (
                4,
                vec![
                    ("name".into(), "josh".into()),
                    ("age".into(), Json::int(32)),
                ],
            ),
        ],
        edges: vec![
            (
                1,
                1,
                2,
                "knows".into(),
                vec![("weight".into(), Json::float(0.5))],
            ),
            (
                2,
                1,
                4,
                "knows".into(),
                vec![("weight".into(), Json::float(1.0))],
            ),
            (
                3,
                1,
                3,
                "created".into(),
                vec![("weight".into(), Json::float(0.4))],
            ),
            (
                4,
                4,
                2,
                "likes".into(),
                vec![("weight".into(), Json::float(0.2))],
            ),
            (
                5,
                4,
                3,
                "created".into(),
                vec![("weight".into(), Json::float(0.8))],
            ),
        ],
    }
}

fn random_graph(seed: u64, vertices: usize, edges: usize) -> GraphData {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = ["knows", "created", "likes", "isPartOf", "team"];
    let names = ["alpha", "beta", "gamma", "delta"];
    let mut data = GraphData::default();
    for v in 1..=vertices as i64 {
        let mut props: Vec<(String, Json)> = vec![(
            "name".into(),
            Json::str(names[rng.gen_range(0..names.len())]),
        )];
        if rng.gen_bool(0.7) {
            props.push(("age".into(), Json::int(rng.gen_range(10..60))));
        }
        if rng.gen_bool(0.3) {
            props.push((
                "tag".into(),
                Json::str(if rng.gen_bool(0.5) { "w" } else { "z" }),
            ));
        }
        data.vertices.push((v, props));
    }
    for e in 1..=edges as i64 {
        let src = rng.gen_range(1..=vertices as i64);
        let dst = rng.gen_range(1..=vertices as i64);
        let label = labels[rng.gen_range(0..labels.len())];
        let mut props: Vec<(String, Json)> = Vec::new();
        if rng.gen_bool(0.5) {
            props.push((
                "weight".into(),
                Json::float((rng.gen_range(0..100) as f64) / 100.0),
            ));
        }
        data.edges.push((e, src, dst, label.into(), props));
    }
    data
}

#[test]
fn corpus_on_figure2_graph_sharded() {
    let data = figure2_graph();
    let (sql, sharded, mem) = build_all(&data);
    for query in CORPUS {
        check_query(&sql, &sharded, &mem, query);
    }
}

#[test]
fn corpus_on_random_graphs_sharded() {
    for seed in 0..3u64 {
        let data = random_graph(seed, 25, 60);
        let (sql, sharded, mem) = build_all(&data);
        for query in CORPUS {
            check_query(&sql, &sharded, &mem, query);
        }
    }
}

#[test]
fn scatter_covers_most_of_the_corpus() {
    // Guard against silently interpreting everything: the scatter-gather
    // executor must handle a healthy majority of the corpus itself.
    let data = figure2_graph();
    let g = ShardedGraph::with_config(4, config()).unwrap();
    g.bulk_load(&data).unwrap();
    for query in CORPUS {
        let _ = g.query(query);
    }
    let fallbacks = g.fallback_count();
    assert!(
        (fallbacks as usize) * 2 < CORPUS.len(),
        "{fallbacks}/{} corpus queries fell back to the interpreter",
        CORPUS.len()
    );
}

/// Blueprints CRUD parity: one random mutation sequence applied to the
/// unsharded store, every sharded store, and MemGraph. Assigned ids must
/// match exactly (the sharded stores allocate from store-global counters),
/// and the corpus must agree afterwards — mutations exercise single-shard
/// commits, cross-shard two-shard commits, and the sharded §4.5.2 delete.
#[test]
fn crud_sequence_keeps_all_stores_identical() {
    let data = figure2_graph();
    let (sql, sharded, mem) = build_all(&data);
    let mut rng = StdRng::seed_from_u64(23);
    let mut live_vertices: Vec<i64> = vec![1, 2, 3, 4];
    let mut live_edges: Vec<i64> = vec![1, 2, 3, 4, 5];
    for step in 0..60 {
        match rng.gen_range(0..6) {
            0 => {
                let props = vec![
                    ("name".to_string(), Json::str("new")),
                    ("age".to_string(), Json::int(rng.gen_range(10..60))),
                ];
                let want = Blueprints::add_vertex(&sql, &props).unwrap();
                assert_eq!(mem.add_vertex(&props).unwrap(), want);
                for g in &sharded {
                    assert_eq!(
                        g.add_vertex(&props).unwrap(),
                        want,
                        "vertex id diverged at step {step} ({} shards)",
                        g.shard_count()
                    );
                }
                live_vertices.push(want);
            }
            1 | 2 => {
                if live_vertices.len() < 2 {
                    continue;
                }
                let src = live_vertices[rng.gen_range(0..live_vertices.len())];
                let dst = live_vertices[rng.gen_range(0..live_vertices.len())];
                let label = ["knows", "created", "likes"][rng.gen_range(0..3usize)];
                let props = vec![("weight".to_string(), Json::float(0.5))];
                let want = Blueprints::add_edge(&sql, src, dst, label, &props).unwrap();
                assert_eq!(mem.add_edge(src, dst, label, &props).unwrap(), want);
                for g in &sharded {
                    assert_eq!(
                        g.add_edge(src, dst, label, &props).unwrap(),
                        want,
                        "edge id diverged at step {step} ({} shards)",
                        g.shard_count()
                    );
                }
                live_edges.push(want);
            }
            3 => {
                if live_vertices.len() <= 2 {
                    continue;
                }
                let idx = rng.gen_range(0..live_vertices.len());
                let v = live_vertices.swap_remove(idx);
                Blueprints::remove_vertex(&sql, v).unwrap();
                mem.remove_vertex(v).unwrap();
                for g in &sharded {
                    g.remove_vertex(v).unwrap();
                }
                // Incident edges are gone everywhere; refresh from one store.
                live_edges.retain(|&e| sql.edge_exists(e));
            }
            4 => {
                if live_edges.is_empty() {
                    continue;
                }
                let idx = rng.gen_range(0..live_edges.len());
                let e = live_edges.swap_remove(idx);
                Blueprints::remove_edge(&sql, e).unwrap();
                mem.remove_edge(e).unwrap();
                for g in &sharded {
                    g.remove_edge(e).unwrap();
                }
            }
            _ => {
                if let Some(&v) = live_vertices.first() {
                    let val = Json::int(rng.gen_range(10..60));
                    Blueprints::set_vertex_property(&sql, v, "age", &val).unwrap();
                    mem.set_vertex_property(v, "age", &val).unwrap();
                    for g in &sharded {
                        g.set_vertex_property(v, "age", &val).unwrap();
                    }
                }
            }
        }
    }
    // Structure parity, including ids.
    for g in &sharded {
        assert_eq!(g.vertex_ids(), sql.vertex_ids());
        assert_eq!(g.edge_ids(), sql.edge_ids());
    }
    // Every corpus query still agrees (ids aligned, so edge-id queries
    // are fair game too). Range is skipped: after deletes the relational
    // stores' traversal order legitimately differs from MemGraph's
    // insertion order, so a positional slice picks different elements —
    // an unsharded-vs-oracle gap, not a sharding one.
    for query in CORPUS.iter().filter(|q| !q.contains(".range(")) {
        check_query(&sql, &sharded, &mem, query);
    }
}
