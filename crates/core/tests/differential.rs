//! Differential testing: for every query in a broad corpus, the SQL
//! translation executed by the relational engine must produce the same
//! multiset of results as (a) the step-at-a-time interpreter running over
//! SqlGraph's Blueprints API and (b) the same interpreter over the MemGraph
//! oracle — on both a hand-built graph and randomized graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlgraph_core::{GraphData, SchemaConfig, SqlGraph};
use sqlgraph_gremlin::{interp, parse_query, Blueprints, Elem, MemGraph};
use sqlgraph_json::Json;
use sqlgraph_rel::Value;

/// Canonical rendering of a result multiset for comparison.
fn canon_values(rows: &[Vec<Value>]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| render_value(r.first().expect("one column")))
        .collect();
    out.sort();
    out
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i:{i}"),
        Value::Double(f) => format!("f:{f}"),
        Value::Str(s) => format!("s:{s}"),
        Value::Bool(b) => format!("b:{b}"),
        Value::Null => "null".into(),
        Value::Json(j) => format!("j:{j}"),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("a:[{}]", inner.join(","))
        }
    }
}

fn canon_elems(elems: &[Elem]) -> Vec<String> {
    let mut out: Vec<String> = elems
        .iter()
        .map(|e| match e {
            Elem::Vertex(v) | Elem::Edge(v) => format!("i:{v}"),
            Elem::Value(j) => render_json(j),
        })
        .collect();
    out.sort();
    out
}

fn render_json(j: &Json) -> String {
    match j {
        Json::Num(n) if n.is_int() => format!("i:{}", n.as_i64().unwrap()),
        Json::Num(n) => format!("f:{}", n.as_f64()),
        Json::Str(s) => format!("s:{s}"),
        Json::Bool(b) => format!("b:{b}"),
        Json::Null => "null".into(),
        Json::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_json).collect();
            format!("a:[{}]", inner.join(","))
        }
        other => format!("j:{other}"),
    }
}

/// Build the same graph in all three stores.
fn build_stores(data: &GraphData) -> (SqlGraph, MemGraph) {
    let sql = SqlGraph::with_config(SchemaConfig {
        out_buckets: 3,
        in_buckets: 3,
    })
    .unwrap();
    sql.bulk_load(data).unwrap();
    let mem = MemGraph::new();
    for (vid, props) in &data.vertices {
        let got = mem.add_vertex(props).unwrap();
        assert_eq!(got, *vid, "MemGraph ids must align");
    }
    // MemGraph assigns edge ids sequentially; data must be in eid order.
    for (eid, src, dst, label, props) in &data.edges {
        let got = mem.add_edge(*src, *dst, label, props).unwrap();
        assert_eq!(got, *eid, "MemGraph edge ids must align");
    }
    (sql, mem)
}

fn check_query(sql: &SqlGraph, mem: &MemGraph, query: &str) {
    let pipeline = parse_query(query).unwrap();
    let oracle = canon_elems(&interp::eval(mem, &pipeline).unwrap());
    let chatty = canon_elems(&interp::eval(sql, &pipeline).unwrap());
    assert_eq!(
        chatty, oracle,
        "interpreter-over-SqlGraph diverged on {query}"
    );
    match sql.translate_query(query) {
        Ok(sql_text) => {
            let translated = sql.database().execute(&sql_text).unwrap_or_else(|e| {
                panic!("generated SQL failed for {query}: {e}\nSQL: {sql_text}")
            });
            assert_eq!(
                canon_values(&translated.rows),
                oracle,
                "translation diverged on {query}\nSQL: {sql_text}"
            );
        }
        Err(_) => {
            // Fallback path must still match (covered by `chatty` above).
        }
    }
}

fn figure2_graph() -> GraphData {
    GraphData {
        vertices: vec![
            (
                1,
                vec![
                    ("name".into(), "marko".into()),
                    ("age".into(), Json::int(29)),
                ],
            ),
            (
                2,
                vec![
                    ("name".into(), "vadas".into()),
                    ("age".into(), Json::int(27)),
                ],
            ),
            (
                3,
                vec![
                    ("name".into(), "lop".into()),
                    ("lang".into(), "java".into()),
                ],
            ),
            (
                4,
                vec![
                    ("name".into(), "josh".into()),
                    ("age".into(), Json::int(32)),
                ],
            ),
        ],
        edges: vec![
            (
                1,
                1,
                2,
                "knows".into(),
                vec![("weight".into(), Json::float(0.5))],
            ),
            (
                2,
                1,
                4,
                "knows".into(),
                vec![("weight".into(), Json::float(1.0))],
            ),
            (
                3,
                1,
                3,
                "created".into(),
                vec![("weight".into(), Json::float(0.4))],
            ),
            (
                4,
                4,
                2,
                "likes".into(),
                vec![("weight".into(), Json::float(0.2))],
            ),
            (
                5,
                4,
                3,
                "created".into(),
                vec![("weight".into(), Json::float(0.8))],
            ),
        ],
    }
}

/// The query corpus: every pipe family the translator supports.
const CORPUS: &[&str] = &[
    "g.V",
    "g.E",
    "g.v(1)",
    "g.v(99)",
    "g.e(3)",
    "g.V.count()",
    "g.E.count()",
    "g.v(1).out",
    "g.v(1).out('knows')",
    "g.v(1).out('knows','created')",
    "g.v(3).in",
    "g.v(2).in('likes')",
    "g.v(4).both",
    "g.v(1).outE",
    "g.v(1).outE('knows')",
    "g.v(2).inE",
    "g.v(4).bothE",
    "g.v(1).outE('knows').inV",
    "g.e(4).outV",
    "g.e(4).inV",
    "g.e(4).bothV",
    "g.v(1).out.out",
    "g.v(1).out.out.count()",
    "g.v(1).out.in.dedup()",
    "g.V.has('age')",
    "g.V.hasNot('age')",
    "g.V.has('age', 29)",
    "g.V.has('age', T.gt, 28)",
    "g.V.has('age', T.lte, 29)",
    "g.V.has('age', T.neq, 29)",
    "g.V.has('name', 'lop')",
    "g.V('name','lop')",
    "g.V('name','lop').in('created')",
    "g.V.filter{it.age > 27 && it.age < 32}",
    "g.V.filter{it.name == 'lop' || it.name == 'vadas'}",
    "g.V.filter{it.name.contains('a')}",
    "g.V.interval('age', 27, 32)",
    "g.V.out.dedup()",
    "g.V.out.dedup().count()",
    "g.v(1).out('knows').values('name')",
    "g.v(1).values('age')",
    "g.v(1).outE.label.dedup()",
    "g.v(2).id",
    "g.E.has('weight', T.gte, 0.8)",
    "g.E.has('weight', T.lt, 0.5).inV",
    "g.v(1).out('knows').out.path",
    "g.v(1).out.both.simplePath.count()",
    "g.V.as('x').out('created').back('x')",
    "g.V.out('created').back(1)",
    "g.V.as('x').out('created').back('x').values('name')",
    "g.v(1).aggregate(x).out('knows').out.except(x)",
    "g.v(2).aggregate(x).in('knows').out.retain(x)",
    "g.V.and(_().out('knows'), _().out('created'))",
    "g.V.or(_().out('knows'), _().out('created'))",
    "g.v(1).copySplit(_().out('knows'), _().out('created')).fairMerge",
    "g.v(1).out.loop(1){it.loops < 2}",
    "g.v(1).out.loop(1){it.loops < 3}.count()",
    "g.V.as('s').out.loop('s'){it.loops < 2}.dedup()",
    "g.V.groupBy{it.name}{it}.count()",
    "g.V.table(t1).out.count()",
    "g.V.filter{it.tag=='w'}.both.dedup().count()",
    "g.V.has('age').ifThenElse{it.age > 28}{it.name}{it.age}",
];

#[test]
fn corpus_on_figure2_graph() {
    let data = figure2_graph();
    let (sql, mem) = build_stores(&data);
    for query in CORPUS {
        check_query(&sql, &mem, query);
    }
}

#[test]
fn corpus_has_good_translation_coverage() {
    // Guard against silently falling back to the interpreter everywhere.
    let data = figure2_graph();
    let (sql, _) = build_stores(&data);
    let mut translated = 0;
    for query in CORPUS {
        if sql.translate_query(query).is_ok() {
            translated += 1;
        }
    }
    assert!(
        translated * 10 >= CORPUS.len() * 9,
        "only {translated}/{} queries translated to SQL",
        CORPUS.len()
    );
}

fn random_graph(seed: u64, vertices: usize, edges: usize) -> GraphData {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = ["knows", "created", "likes", "isPartOf", "team"];
    let names = ["alpha", "beta", "gamma", "delta"];
    let mut data = GraphData::default();
    for v in 1..=vertices as i64 {
        let mut props: Vec<(String, Json)> = vec![(
            "name".into(),
            Json::str(names[rng.gen_range(0..names.len())]),
        )];
        if rng.gen_bool(0.7) {
            props.push(("age".into(), Json::int(rng.gen_range(10..60))));
        }
        if rng.gen_bool(0.3) {
            props.push((
                "tag".into(),
                Json::str(if rng.gen_bool(0.5) { "w" } else { "z" }),
            ));
        }
        data.vertices.push((v, props));
    }
    for e in 1..=edges as i64 {
        let src = rng.gen_range(1..=vertices as i64);
        let dst = rng.gen_range(1..=vertices as i64);
        let label = labels[rng.gen_range(0..labels.len())];
        let mut props: Vec<(String, Json)> = Vec::new();
        if rng.gen_bool(0.5) {
            props.push((
                "weight".into(),
                Json::float((rng.gen_range(0..100) as f64) / 100.0),
            ));
        }
        data.edges.push((e, src, dst, label.into(), props));
    }
    data
}

#[test]
fn corpus_on_random_graphs() {
    for seed in 0..4u64 {
        let data = random_graph(seed, 25, 60);
        let (sql, mem) = build_stores(&data);
        for query in CORPUS {
            check_query(&sql, &mem, query);
        }
    }
}

#[test]
fn corpus_survives_updates() {
    // Apply the same random update sequence to SqlGraph and MemGraph, then
    // re-check the corpus: exercises attach/detach/migration/deletion.
    let data = figure2_graph();
    let (sql, mem) = build_stores(&data);
    let mut rng = StdRng::seed_from_u64(7);
    let mut live_vertices: Vec<i64> = vec![1, 2, 3, 4];
    let mut next_vid = 5i64;
    let mut next_eid = 6i64;
    for _ in 0..40 {
        match rng.gen_range(0..5) {
            0 => {
                let props = vec![("name".to_string(), Json::str("new"))];
                let a = Blueprints::add_vertex(&sql, &props).unwrap();
                let b = mem.add_vertex(&props).unwrap();
                assert_eq!(a, b, "vertex ids diverged");
                assert_eq!(a, next_vid);
                live_vertices.push(a);
                next_vid += 1;
            }
            1 | 2 => {
                if live_vertices.len() < 2 {
                    continue;
                }
                let src = live_vertices[rng.gen_range(0..live_vertices.len())];
                let dst = live_vertices[rng.gen_range(0..live_vertices.len())];
                let label = ["knows", "created", "likes"][rng.gen_range(0..3usize)];
                let a = Blueprints::add_edge(&sql, src, dst, label, &[]).unwrap();
                let b = mem.add_edge(src, dst, label, &[]).unwrap();
                // Edge id counters can diverge after removals; re-align by
                // asserting both stores accepted the edge.
                let _ = (a, b);
                next_eid += 1;
                let _ = next_eid;
            }
            3 => {
                if live_vertices.len() <= 2 {
                    continue;
                }
                let idx = rng.gen_range(0..live_vertices.len());
                let v = live_vertices.swap_remove(idx);
                Blueprints::remove_vertex(&sql, v).unwrap();
                mem.remove_vertex(v).unwrap();
            }
            _ => {
                if let Some(&v) = live_vertices.first() {
                    let key = "age";
                    let val = Json::int(rng.gen_range(10..60));
                    Blueprints::set_vertex_property(&sql, v, key, &val).unwrap();
                    mem.set_vertex_property(v, key, &val).unwrap();
                }
            }
        }
    }
    // Edge ids may differ between stores after interleaved removals, so
    // restrict the re-check to queries that do not expose edge ids.
    for query in CORPUS.iter().filter(|q| {
        !q.contains("g.e(")
            && !q.contains("outE")
            && !q.contains("inE")
            && !q.contains("bothE")
            && !q.contains("g.E")
    }) {
        check_query(&sql, &mem, query);
    }
}

#[test]
fn corpus_survives_crash_and_reopen() {
    // Graph CRUD through a crash: build the Figure-2 graph through the
    // Blueprints mutation path on a WAL-backed store over SimFs, mutate it
    // (property update, extra vertex/edge, vertex deletion), checkpoint,
    // crash mid-mutation, reopen — Gremlin results must still match the
    // MemGraph oracle on the full corpus.
    use sqlgraph_rel::{Fault, FaultKind, SimFs};
    use std::sync::Arc;

    let fs = SimFs::new();
    let base = std::path::PathBuf::from("graph.wal");
    let config = SchemaConfig {
        out_buckets: 3,
        in_buckets: 3,
    };
    let mem = MemGraph::new();
    {
        let sql = SqlGraph::open_with_vfs(&base, config, Arc::new(fs.clone())).unwrap();
        sql.set_sync_on_commit(true);
        let data = figure2_graph();
        for (vid, props) in &data.vertices {
            assert_eq!(Blueprints::add_vertex(&sql, props).unwrap(), *vid);
            assert_eq!(mem.add_vertex(props).unwrap(), *vid);
        }
        for (eid, src, dst, label, props) in &data.edges {
            assert_eq!(
                Blueprints::add_edge(&sql, *src, *dst, label, props).unwrap(),
                *eid
            );
            assert_eq!(mem.add_edge(*src, *dst, label, props).unwrap(), *eid);
        }
        // Property update + new vertex/edge on both stores.
        let age = Json::int(30);
        Blueprints::set_vertex_property(&sql, 1, "age", &age).unwrap();
        mem.set_vertex_property(1, "age", &age).unwrap();
        let props = vec![("name".to_string(), Json::str("ripple"))];
        assert_eq!(Blueprints::add_vertex(&sql, &props).unwrap(), 5);
        assert_eq!(mem.add_vertex(&props).unwrap(), 5);
        assert_eq!(Blueprints::add_edge(&sql, 4, 5, "created", &[]).unwrap(), 6);
        assert_eq!(mem.add_edge(4, 5, "created", &[]).unwrap(), 6);

        // Bound recovery: everything so far comes back from the snapshot.
        let report = sql.checkpoint().unwrap();
        assert_eq!(report.gen, 1);

        // Post-checkpoint tail: delete a vertex (and its incident edges).
        Blueprints::remove_vertex(&sql, 2).unwrap();
        mem.remove_vertex(2).unwrap();

        // Crash the next file-system operation: this mutation must ack on
        // neither store.
        fs.schedule_fault(Fault {
            at_op: fs.op_count(),
            kind: FaultKind::Crash { keep_tail: 0 },
        });
        assert!(Blueprints::add_vertex(&sql, &props).is_err());
    }
    fs.recover();
    let sql = SqlGraph::open_with_vfs(&base, config, Arc::new(fs.clone())).unwrap();
    let report = sql.recovery_report().unwrap();
    assert_eq!(report.snapshot_gen, Some(1));
    for query in CORPUS {
        check_query(&sql, &mem, query);
    }
    // The reopened store keeps working: mutate and re-check a query.
    let props = vec![("name".to_string(), Json::str("peter"))];
    let vid = Blueprints::add_vertex(&sql, &props).unwrap();
    assert_eq!(mem.add_vertex(&props).unwrap(), vid);
    check_query(&sql, &mem, "g.V.count()");
}

#[test]
fn corpus_planned_vs_naive_join_order() {
    // The cost-based planner may reorder joins and push predicates below
    // them; every translatable corpus query must return the same multiset
    // of rows as naive left-to-right execution — with and without fresh
    // ANALYZE statistics.
    for seed in 0..3u64 {
        let data = random_graph(seed, 25, 60);
        let (sql, _mem) = build_stores(&data);
        if seed > 0 {
            // Seed 0 runs on index-seeded statistics only.
            sql.database().execute("ANALYZE").unwrap();
        }
        for query in CORPUS {
            let Ok(sql_text) = sql.translate_query(query) else {
                continue;
            };
            sql.database().set_planner_enabled(true);
            let planned = sql.database().execute(&sql_text).unwrap_or_else(|e| {
                panic!("planned execution failed for {query}: {e}\nSQL: {sql_text}")
            });
            sql.database().set_planner_enabled(false);
            let naive = sql.database().execute(&sql_text).unwrap_or_else(|e| {
                panic!("naive execution failed for {query}: {e}\nSQL: {sql_text}")
            });
            sql.database().set_planner_enabled(true);
            assert_eq!(
                canon_values(&planned.rows),
                canon_values(&naive.rows),
                "planner changed results on {query}\nSQL: {sql_text}"
            );
        }
    }
}

#[test]
fn corpus_parallel_vs_serial() {
    // Morsel-parallel execution must be not just multiset-equal but
    // row-identical to serial: parallel operators concatenate morsel
    // outputs in morsel order, so even unsorted results keep serial row
    // order. Checked at DOP 2/4/8 with the planner both on and off.
    for seed in 0..2u64 {
        let data = random_graph(seed, 25, 60);
        let (sql, _mem) = build_stores(&data);
        if seed > 0 {
            sql.database().execute("ANALYZE").unwrap();
        }
        for planner_on in [true, false] {
            sql.database().set_planner_enabled(planner_on);
            for query in CORPUS {
                let Ok(sql_text) = sql.translate_query(query) else {
                    continue;
                };
                sql.database().set_parallelism(1);
                let serial = sql.database().execute(&sql_text).unwrap_or_else(|e| {
                    panic!("serial execution failed for {query}: {e}\nSQL: {sql_text}")
                });
                for dop in [2usize, 4, 8] {
                    sql.database().set_parallelism(dop);
                    let parallel = sql.database().execute(&sql_text).unwrap_or_else(|e| {
                        panic!("dop {dop} execution failed for {query}: {e}\nSQL: {sql_text}")
                    });
                    assert_eq!(
                        serial.rows, parallel.rows,
                        "dop {dop} diverged (planner={planner_on}) on {query}\nSQL: {sql_text}"
                    );
                }
            }
        }
        sql.database().set_planner_enabled(true);
        sql.database().set_parallelism(0);
    }
}

#[test]
fn corpus_batch_vs_row() {
    // The columnar batch engine must be byte-identical to the row engine —
    // not just multiset-equal: same rows in the same order, since batch
    // operators preserve the serial row order by construction. Checked for
    // every translatable corpus query at DOP 1/2/4/8 with the planner both
    // on and off.
    for seed in 0..2u64 {
        let data = random_graph(seed, 25, 60);
        let (sql, _mem) = build_stores(&data);
        if seed > 0 {
            sql.database().execute("ANALYZE").unwrap();
        }
        for planner_on in [true, false] {
            sql.database().set_planner_enabled(planner_on);
            for query in CORPUS {
                let Ok(sql_text) = sql.translate_query(query) else {
                    continue;
                };
                for dop in [1usize, 2, 4, 8] {
                    sql.database().set_parallelism(dop);
                    sql.database().set_batch_enabled(false);
                    let row = sql.database().execute(&sql_text).unwrap_or_else(|e| {
                        panic!("row engine failed for {query}: {e}\nSQL: {sql_text}")
                    });
                    sql.database().set_batch_enabled(true);
                    let batch = sql.database().execute(&sql_text).unwrap_or_else(|e| {
                        panic!("batch engine failed for {query}: {e}\nSQL: {sql_text}")
                    });
                    assert_eq!(
                        batch.rows, row.rows,
                        "batch engine diverged (dop {dop}, planner={planner_on}) on {query}\nSQL: {sql_text}"
                    );
                    assert_eq!(
                        batch.columns, row.columns,
                        "column names diverged on {query}"
                    );
                }
            }
        }
        sql.database().set_planner_enabled(true);
        sql.database().set_parallelism(0);
        sql.database().set_batch_enabled(true);
    }
}

#[test]
fn corpus_csr_on_vs_off() {
    // The CSR adjacency access path plus list-based execution must be
    // byte-identical to the row engine's index nested-loop joins — same
    // rows, same order — for every translatable corpus query at DOP
    // 1/2/4/8 with the planner both on and off. The graph is sized so the
    // adjacency tables clear the planner's CSR row-count floor (the tiny
    // corpus graphs never would).
    let data = random_graph(42, 400, 1100);
    let (sql, _mem) = build_stores(&data);
    sql.database().execute("ANALYZE").unwrap();
    for planner_on in [true, false] {
        sql.database().set_planner_enabled(planner_on);
        for query in CORPUS {
            let Ok(sql_text) = sql.translate_query(query) else {
                continue;
            };
            for dop in [1usize, 2, 4, 8] {
                sql.database().set_parallelism(dop);
                sql.database().set_csr_enabled(false);
                let row = sql.database().execute(&sql_text).unwrap_or_else(|e| {
                    panic!("csr-off execution failed for {query}: {e}\nSQL: {sql_text}")
                });
                sql.database().set_csr_enabled(true);
                let csr = sql.database().execute(&sql_text).unwrap_or_else(|e| {
                    panic!("csr-on execution failed for {query}: {e}\nSQL: {sql_text}")
                });
                assert_eq!(
                    csr.rows, row.rows,
                    "csr path diverged (dop {dop}, planner={planner_on}) on {query}\nSQL: {sql_text}"
                );
                assert_eq!(csr.columns, row.columns, "column names diverged on {query}");
            }
        }
    }
    assert!(
        sql.database().csr_builds() > 0,
        "corpus never exercised the CSR access path"
    );
    sql.database().set_planner_enabled(true);
    sql.database().set_parallelism(0);
}

#[test]
fn txn_reader_never_sees_csr_rebuilt_past_its_snapshot() {
    // A CSR entry is keyed to the table's content version; a transaction's
    // snapshot must keep seeing pre-transaction adjacency even after
    // concurrent commits invalidate and rebuild the shared cache entry.
    let data = random_graph(7, 400, 1100);
    let (sql, _mem) = build_stores(&data);
    let db = sql.database();
    let count_sql = sql.translate_query("g.V.out.out.count()").unwrap();
    let before = db.execute(&count_sql).unwrap().rows.clone();
    assert!(db.csr_cache_len() > 0, "autocommit read should prime CSR");

    let mut txn = db.begin();
    let in_txn_first = txn.execute(&count_sql).unwrap().rows;
    assert_eq!(in_txn_first, before);

    // Concurrent autocommit writer: new edges through the graph update
    // procedures (they rewrite OPA/IPA/OSA/ISA/EA consistently).
    for i in 0..10 {
        Blueprints::add_edge(&sql, 1 + i, 2 + i, "knows", &[]).unwrap();
    }
    // The shared cache must not serve the stale entry to new readers...
    let after_write = db.execute(&count_sql).unwrap().rows.clone();
    assert_ne!(after_write, before, "writer's commit must be visible");
    // ...and the rebuilt entry must not leak into the open transaction.
    let in_txn_second = txn.execute(&count_sql).unwrap().rows;
    assert_eq!(
        in_txn_second, before,
        "snapshot reader observed a CSR rebuilt past its snapshot"
    );
    txn.rollback();
    assert_eq!(db.execute(&count_sql).unwrap().rows, after_write);
}
