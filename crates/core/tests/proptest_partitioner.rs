//! Property-based tests for the VID partitioner: shard placement decides
//! where every vertex's data lives on disk, so the assignment must be a
//! pure, stable function of `(vid, shard count)` — identical across runs,
//! processes, and restarts — and close to uniform so no shard becomes the
//! hot one.

use proptest::prelude::*;
use sqlgraph_core::shard_of;

proptest! {
    /// Every assignment lands in range, and recomputing it — as a reopened
    /// process would — gives the same shard.
    #[test]
    fn assignment_is_total_and_deterministic(vid in any::<i64>(), n in 1usize..=16) {
        let s = shard_of(vid, n);
        prop_assert!(s < n);
        prop_assert_eq!(s, shard_of(vid, n));
    }

    /// One shard degenerates to the unsharded store.
    #[test]
    fn single_shard_owns_everything(vid in any::<i64>()) {
        prop_assert_eq!(shard_of(vid, 1), 0);
        prop_assert_eq!(shard_of(vid, 0), 0);
    }

    /// Coarsening 2k shards to k maps each id into one of two fixed
    /// residue-related buckets — nothing here; the real cross-restart
    /// guarantee is the pinned table below. This property instead checks
    /// that nearby ids do not cluster: any 64-id window spread over 4
    /// shards hits more than one shard (dense sequential allocation, the
    /// common case, must not pile onto one shard).
    #[test]
    fn dense_windows_spread(start in -1_000_000i64..1_000_000) {
        let hit: std::collections::BTreeSet<usize> =
            (start..start + 64).map(|v| shard_of(v, 4)).collect();
        prop_assert!(hit.len() > 1, "64 consecutive ids all on shard {:?}", hit);
    }
}

/// Pinned assignments: a shard directory written by one build must be
/// readable by every later build, so these exact values are frozen. If
/// this test fails, the partitioner changed and existing sharded stores
/// can no longer be reopened — that is a breaking on-disk format change.
#[test]
fn assignment_is_pinned_across_releases() {
    let pins: [(i64, usize, usize); 12] = [
        (1, 2, 1),
        (2, 2, 0),
        (1000, 2, 1),
        (1, 4, 1),
        (2, 4, 2),
        (3, 4, 0),
        (1000, 4, 3),
        (999_999, 4, 1),
        (-5, 4, 2),
        (i64::MAX, 4, 1),
        (1, 8, 5),
        (1000, 8, 7),
    ];
    for (vid, n, want) in pins {
        assert_eq!(shard_of(vid, n), want, "shard_of({vid}, {n}) moved");
    }
}

/// Uniformity at the headline scale: hashing VIDs 1..=1M, every shard's
/// share stays within 10% of the even split for 2/4/8 shards. The
/// partitioner takes no seed, so this is one deterministic check, not a
/// sampled property.
#[test]
fn one_million_vids_spread_within_ten_percent() {
    for n in [2usize, 4, 8] {
        let mut counts = vec![0usize; n];
        for vid in 1..=1_000_000i64 {
            counts[shard_of(vid, n)] += 1;
        }
        let even = 1_000_000.0 / n as f64;
        for (shard, &c) in counts.iter().enumerate() {
            let skew = (c as f64 - even).abs() / even;
            assert!(
                skew < 0.10,
                "shard {shard}/{n} holds {c} of 1M vids ({:.1}% off even)",
                skew * 100.0
            );
        }
    }
}
