//! Store construction from generated datasets.

use sqlgraph_baselines::{KvGraph, NativeGraph};
use sqlgraph_core::{GraphData, SchemaConfig, ShardedGraph, SqlGraph};
use sqlgraph_datagen::Dataset;

/// Convert a generated dataset into SQLGraph's bulk-load form.
pub fn to_graph_data(data: &Dataset) -> GraphData {
    GraphData {
        vertices: data.vertices.clone(),
        edges: data.edges.clone(),
    }
}

/// Build a SQLGraph store (bulk load: coloring computed from the data).
/// 16 column triads per adjacency table — the paper's tables are wide
/// enough that adjacency spills are rare (Table 3).
pub fn build_sqlgraph(data: &Dataset) -> SqlGraph {
    let g = SqlGraph::with_config(SchemaConfig {
        out_buckets: 16,
        in_buckets: 16,
    })
    .expect("schema");
    g.bulk_load(&to_graph_data(data)).expect("bulk load");
    // The paper adds specialized attribute indexes for queried keys
    // (§3.3); `uri` serves the typed GraphQuery starts, the rest the
    // Table 2 lookups.
    for key in [
        "uri",
        "name",
        "national",
        "genre",
        "regionAffiliation",
        "wikiPageID",
        "bucket",
    ] {
        g.create_vertex_property_index(key).expect("property index");
    }
    g
}

/// Build a hash-partitioned SQLGraph store with `shards` inner databases.
/// Same schema width as [`build_sqlgraph`]; the §3.2 coloring is computed
/// once from the full data so every shard lays labels out identically.
pub fn build_sharded(data: &Dataset, shards: usize) -> ShardedGraph {
    let g = ShardedGraph::with_config(
        shards,
        SchemaConfig {
            out_buckets: 16,
            in_buckets: 16,
        },
    )
    .expect("schema");
    g.bulk_load(&to_graph_data(data)).expect("bulk load");
    g
}

/// Build the Titan-style baseline.
pub fn build_kvgraph(data: &Dataset) -> KvGraph {
    let g = KvGraph::new();
    data.load_blueprints(&g).expect("load");
    g
}

/// Build the Neo4j-style baseline.
pub fn build_nativegraph(data: &Dataset) -> NativeGraph {
    let g = NativeGraph::new();
    data.load_blueprints(&g).expect("load");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgraph_datagen::dbpedia::{generate, DbpediaConfig};
    use sqlgraph_gremlin::Blueprints;

    #[test]
    fn all_stores_load_the_same_graph() {
        let g = generate(&DbpediaConfig::tiny());
        let sql = build_sqlgraph(&g.data);
        let kv = build_kvgraph(&g.data);
        let native = build_nativegraph(&g.data);
        let n = g.data.vertex_count();
        assert_eq!(sql.database().table_len("va").unwrap(), n);
        assert_eq!(kv.vertex_count(), n);
        assert_eq!(native.vertex_count(), n);
    }
}
