//! One function per paper artifact: each builds the workload, runs every
//! system, and returns a printable report. The `repro` binary is a thin
//! dispatcher over these.

use crate::linkops::{LinkOps, RemoteMixedOps, ShardedLinkOps, SqlLinkOps};
use crate::setup::{
    build_kvgraph, build_nativegraph, build_sharded, build_sqlgraph, to_graph_data,
};
use crate::timing::{mean_time, ms, LatencyStats};
use sqlgraph_baselines::RemoteGraph;
use sqlgraph_core::alt::{JsonAdjacency, ShreddedAttrs};
use sqlgraph_core::{AdjacencyStrategy, SqlGraph, TranslateOptions};
use sqlgraph_datagen::dbpedia::{
    adjacency_queries, attribute_queries, benchmark_queries, generate as gen_dbpedia, path_queries,
    AttrFilter, DbpediaConfig, DbpediaGraph,
};
use sqlgraph_datagen::linkbench::{self, LinkBenchConfig, Workload};
use sqlgraph_gremlin::{interp, parse_query};
use sqlgraph_rel::Value;
use sqlgraph_server::Server;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Busy-wait for `d` (sub-100µs sleeps are too coarse for the simulated
/// round trip).
fn spin(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// Harness-wide knobs.
#[derive(Debug, Clone)]
pub struct ReproConfig {
    /// Scale multiplier on the DBpedia-like dataset.
    pub scale: f64,
    /// Timed runs per query (after one discarded warm-up).
    pub runs: usize,
    /// LinkBench graph sizes (node counts) for the throughput sweep.
    pub lb_nodes: Vec<usize>,
    /// Operations per requester in the throughput runs.
    pub lb_ops: usize,
    /// Requester counts.
    pub lb_requesters: Vec<usize>,
    /// Per-call overhead (µs) charged to the Blueprints baselines, and once
    /// per query/operation to SQLGraph — the documented stand-in for the
    /// 2015-era disk + JVM + server cost per storage access that our
    /// idealized in-memory baselines do not otherwise pay. Set to 0 for the
    /// fully idealized in-memory comparison.
    pub call_overhead_us: u64,
    /// Client counts for the connection-scalability sweep (`conn-sweep`).
    pub conn_counts: Vec<usize>,
    /// LinkBench graph size (node count) for the shard-count sweep — the
    /// headline claim is made at 1M+ nodes.
    pub shard_nodes: usize,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            scale: 1.0,
            runs: 3,
            lb_nodes: vec![1_000, 5_000, 20_000],
            lb_ops: 400,
            lb_requesters: vec![1, 10, 100],
            call_overhead_us: 20,
            conn_counts: vec![1, 8, 64, 256, 1024],
            shard_nodes: 1_000_000,
        }
    }
}

impl ReproConfig {
    /// A fast configuration for smoke tests.
    pub fn quick() -> ReproConfig {
        ReproConfig {
            scale: 0.15,
            runs: 1,
            lb_nodes: vec![500],
            lb_ops: 100,
            lb_requesters: vec![1, 4],
            call_overhead_us: 20,
            conn_counts: vec![1, 8, 64],
            shard_nodes: 2_000,
        }
    }

    fn dbpedia(&self) -> DbpediaGraph {
        gen_dbpedia(&DbpediaConfig::default().scaled(self.scale))
    }
}

fn count_of(rel: &sqlgraph_rel::Relation) -> i64 {
    rel.scalar()
        .and_then(Value::as_int)
        .unwrap_or(rel.rows.len() as i64)
}

// ---------------------------------------------------------------------------
// Figure 3 / Table 1 — adjacency micro-benchmark
// ---------------------------------------------------------------------------

/// Hash-shredded adjacency vs JSON-document adjacency on the 11 Table 1
/// traversals.
pub fn fig3(cfg: &ReproConfig) -> String {
    let g = cfg.dbpedia();
    let sql = build_sqlgraph(&g.data);
    let ja = JsonAdjacency::new().expect("schema");
    ja.load(&to_graph_data(&g.data)).expect("load");

    let force_hash = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceHash,
        factorize: false,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 / Table 1 — adjacency micro-benchmark ({} vertices, {} edges)",
        g.data.vertex_count(),
        g.data.edge_count()
    );
    let _ = writeln!(
        out,
        "{:<4} {:>5} {:>7} {:>10} {:>12} {:>12} {:>8}",
        "Q", "hops", "input", "result", "hash_ms", "json_ms", "ratio"
    );
    for q in adjacency_queries(&g) {
        // Hash arm: the Gremlin translation over OPA/OSA.
        let hash_result = sql.query_with(&q.gremlin, force_hash).expect("hash arm");
        let hash_count = count_of(&hash_result);
        let hash_t = mean_time(cfg.runs, || {
            let _ = sql.query_with(&q.gremlin, force_hash).expect("hash arm");
        });
        // JSON arm: the same traversal over the adjacency documents.
        let (seed, label, both) = json_arm_spec(&g, q.id, q.input_size);
        let json_result = if both {
            ja.khop_both(&seed, Some(label), q.hops).expect("json arm")
        } else {
            ja.khop(&seed, Some(label), q.hops).expect("json arm")
        };
        let json_count = count_of(&json_result);
        assert_eq!(
            hash_count, json_count,
            "arms disagree on query {} ({hash_count} vs {json_count})",
            q.id
        );
        let json_t = mean_time(cfg.runs, || {
            let _ = if both {
                ja.khop_both(&seed, Some(label), q.hops)
            } else {
                ja.khop(&seed, Some(label), q.hops)
            }
            .expect("json arm");
        });
        let ratio = json_t.as_secs_f64() / hash_t.as_secs_f64().max(1e-9);
        let _ = writeln!(
            out,
            "{:<4} {:>5} {:>7} {:>10} {:>12} {:>12} {:>7.1}x",
            q.id,
            q.hops,
            q.input_size,
            hash_count,
            ms(hash_t),
            ms(json_t),
            ratio
        );
    }
    let _ = writeln!(
        out,
        "(paper: hash mean 3.2s vs JSON mean 18.0s — JSON slower throughout)"
    );
    out
}

/// The JSON-arm seed filter matching each Table 1 query's Gremlin start.
fn json_arm_spec(g: &DbpediaGraph, id: usize, input: usize) -> (String, &'static str, bool) {
    if id <= 6 {
        (
            format!("JSON_VAL(attr, 'bucket') >= 0 AND JSON_VAL(attr, 'bucket') < {input}"),
            "isPartOf",
            false,
        )
    } else if input == 1 {
        (format!("vid = {}", g.ids.players.0), "team", true)
    } else {
        (
            format!(
                "JSON_VAL(attr, 'wikiPageID') < {}",
                20_000_000 + input as i64
            ),
            "team",
            true,
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 4 / Table 2 — attribute lookup micro-benchmark
// ---------------------------------------------------------------------------

/// JSON attribute table vs shredded relational attribute table on the 16
/// Table 2 lookups.
pub fn fig4(cfg: &ReproConfig) -> String {
    let g = cfg.dbpedia();
    let sql = build_sqlgraph(&g.data);
    let shredded = ShreddedAttrs::build(&g.data.vertices, 6).expect("shred");

    let mut out = String::new();
    let _ = writeln!(out, "Figure 4 / Table 2 — vertex attribute lookups");
    let _ = writeln!(
        out,
        "{:<4} {:<22} {:<12} {:>8} {:>12} {:>12}",
        "Q", "attribute", "filter", "result", "json_ms", "hash_ms"
    );
    for q in attribute_queries() {
        let (json_sql, shred_sql, filter_name) = match &q.filter {
            AttrFilter::NotNull => (
                format!(
                    "SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, '{}') IS NOT NULL",
                    q.key
                ),
                shredded.count_not_null_sql(q.key),
                "not null".to_string(),
            ),
            AttrFilter::Like(p) => (
                format!(
                    "SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, '{}') LIKE '{p}'",
                    q.key
                ),
                shredded.count_like_sql(q.key, p),
                format!("like {p}"),
            ),
            AttrFilter::NumericEq(v) => (
                format!(
                    "SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, '{}') = {v}",
                    q.key
                ),
                shredded.count_numeric_eq_sql(q.key, *v),
                format!("= {v}"),
            ),
            AttrFilter::IntEq(v) => (
                format!(
                    "SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, '{}') = {v}",
                    q.key
                ),
                shredded.count_numeric_eq_sql(q.key, *v as f64),
                format!("= {v}"),
            ),
            AttrFilter::StrEq(v) => (
                format!(
                    "SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, '{}') = '{v}'",
                    q.key
                ),
                shredded.count_string_eq_sql(q.key, v),
                format!("= {v}"),
            ),
        };
        let json_count = count_of(&sql.database().execute(&json_sql).expect("json arm"));
        let shred_count = count_of(&shredded.run(&shred_sql).expect("shred arm"));
        assert_eq!(
            json_count, shred_count,
            "arms disagree on attribute query {}",
            q.id
        );
        let json_t = mean_time(cfg.runs, || {
            let _ = sql.database().execute(&json_sql).expect("json arm");
        });
        let shred_t = mean_time(cfg.runs, || {
            let _ = shredded.run(&shred_sql).expect("shred arm");
        });
        let _ = writeln!(
            out,
            "{:<4} {:<22} {:<12} {:>8} {:>12} {:>12}",
            q.id,
            q.key,
            filter_name,
            json_count,
            ms(json_t),
            ms(shred_t)
        );
    }
    let _ = writeln!(
        out,
        "(paper: JSON mean 92ms vs shredded 265ms; ties on not-null)"
    );
    out
}

// ---------------------------------------------------------------------------
// Table 3 — hash table characteristics
// ---------------------------------------------------------------------------

/// The layout statistics table.
pub fn table3(cfg: &ReproConfig) -> String {
    let g = cfg.dbpedia();
    let sql = build_sqlgraph(&g.data);
    let (out_stats, in_stats) = sql.load_stats().expect("bulk load records stats");
    let attr_stats = ShreddedAttrs::build(&g.data.vertices, 6)
        .expect("shred")
        .stats()
        .clone();

    let mut out = String::new();
    let _ = writeln!(out, "Table 3 — hash table characteristics");
    let _ = writeln!(
        out,
        "{:<28} {:>14} {:>16} {:>16}",
        "", "VertexAttr", "OutAdjacency", "InAdjacency"
    );
    let rows: [(&str, String, String, String); 5] = [
        (
            "No. of Hashed Labels",
            attr_stats.hashed_labels.to_string(),
            out_stats.hashed_labels.to_string(),
            in_stats.hashed_labels.to_string(),
        ),
        (
            "Hashed Bucket Size",
            attr_stats.max_bucket_size.to_string(),
            out_stats.max_bucket_size.to_string(),
            in_stats.max_bucket_size.to_string(),
        ),
        (
            "Spill Rows Percentage",
            format!("{:.1}%", attr_stats.spill_percent()),
            format!("{:.1}%", out_stats.spill_percent()),
            format!("{:.1}%", in_stats.spill_percent()),
        ),
        (
            "Long String Table Rows",
            attr_stats.long_string_rows.to_string(),
            "0".into(),
            "0".into(),
        ),
        (
            "Multi-Value Table Rows",
            attr_stats.multi_value_rows.to_string(),
            out_stats.multi_value_rows.to_string(),
            in_stats.multi_value_rows.to_string(),
        ),
    ];
    for (name, a, b, c) in rows {
        let _ = writeln!(out, "{name:<28} {a:>14} {b:>16} {c:>16}");
    }
    let _ = writeln!(
        out,
        "(paper shape: attr table has spills/long strings/multi-values; adjacency mostly clean)"
    );
    out
}

// ---------------------------------------------------------------------------
// Table 4 — neighbors lookup: EA vs IPA+ISA by selectivity
// ---------------------------------------------------------------------------

/// Vertex-neighbor queries at increasing fan-in.
pub fn table4(cfg: &ReproConfig) -> String {
    let g = cfg.dbpedia();
    let sql = build_sqlgraph(&g.data);
    // Candidate start vertices with escalating in-degree: an entity, a mid
    // place, a team, ..., and the class vertices (type hubs).
    let candidates = [
        g.ids.entities.0,
        g.ids.places.0 + 1,
        g.ids.teams.0,
        g.ids.teams.0 + 1,
        g.ids.classes.2,
        g.ids.classes.1,
        g.ids.classes.0,
    ];
    let ea = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceEa,
        factorize: false,
    };
    let hash = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceHash,
        factorize: false,
    };
    let mut out = String::new();
    let _ = writeln!(out, "Table 4 — neighbors of a vertex: EA vs IPA+ISA");
    let _ = writeln!(
        out,
        "{:<4} {:>10} {:>12} {:>12}",
        "Q", "result", "EA_ms", "IPA+ISA_ms"
    );
    for (i, &v) in candidates.iter().enumerate() {
        let q = format!("g.v({v}).in.count()");
        let n = count_of(&sql.query_with(&q, ea).expect("EA arm"));
        let n2 = count_of(&sql.query_with(&q, hash).expect("hash arm"));
        assert_eq!(n, n2, "strategy arms disagree at vertex {v}");
        let t_ea = mean_time(cfg.runs, || {
            let _ = sql.query_with(&q, ea).expect("EA arm");
        });
        let t_hash = mean_time(cfg.runs, || {
            let _ = sql.query_with(&q, hash).expect("hash arm");
        });
        let _ = writeln!(
            out,
            "{:<4} {:>10} {:>12} {:>12}",
            i + 1,
            n,
            ms(t_ea),
            ms(t_hash)
        );
    }
    let _ = writeln!(
        out,
        "(paper shape: comparable at low fan-in; IPA+ISA degrades at very high fan-in)"
    );
    out
}

// ---------------------------------------------------------------------------
// Figure 6 — path computation: OPA+OSA vs EA self-joins
// ---------------------------------------------------------------------------

/// The 11 long-path queries under both physical strategies.
pub fn fig6(cfg: &ReproConfig) -> String {
    let g = cfg.dbpedia();
    let sql = build_sqlgraph(&g.data);
    let ea = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceEa,
        factorize: false,
    };
    let hash = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceHash,
        factorize: false,
    };
    let mut out = String::new();
    let _ = writeln!(out, "Figure 6 — long paths: OPA+OSA joins vs EA self-joins");
    let _ = writeln!(
        out,
        "{:<5} {:>12} {:>12} {:>8}",
        "lq", "OPA+OSA_ms", "EA_ms", "ratio"
    );
    let mut hash_total = 0.0;
    let mut ea_total = 0.0;
    for (i, q) in path_queries(&g).iter().enumerate() {
        let a = count_of(&sql.query_with(q, hash).expect("hash"));
        let b = count_of(&sql.query_with(q, ea).expect("ea"));
        assert_eq!(a, b, "strategies disagree on lq{}", i + 1);
        let t_hash = mean_time(cfg.runs, || {
            let _ = sql.query_with(q, hash).expect("hash");
        });
        let t_ea = mean_time(cfg.runs, || {
            let _ = sql.query_with(q, ea).expect("ea");
        });
        hash_total += t_hash.as_secs_f64();
        ea_total += t_ea.as_secs_f64();
        let _ = writeln!(
            out,
            "lq{:<3} {:>12} {:>12} {:>7.1}x",
            i + 1,
            ms(t_hash),
            ms(t_ea),
            t_ea.as_secs_f64() / t_hash.as_secs_f64().max(1e-9)
        );
    }
    let _ = writeln!(
        out,
        "mean: OPA+OSA {:.1} ms vs EA {:.1} ms (paper: 8.8s vs 17.8s — shredding wins long paths)",
        1e3 * hash_total / 11.0,
        1e3 * ea_total / 11.0
    );
    out
}

// ---------------------------------------------------------------------------
// Figure 8 — DBpedia benchmark across the three systems
// ---------------------------------------------------------------------------

struct SystemTimes {
    name: &'static str,
    times_ms: Vec<f64>,
}

fn run_query_set(
    cfg: &ReproConfig,
    sql: &SqlGraph,
    kv: &sqlgraph_baselines::KvGraph,
    native: &sqlgraph_baselines::NativeGraph,
    queries: &[String],
    check_agreement: bool,
) -> Vec<SystemTimes> {
    // Server-mode cost model (§5): every Blueprints call on the baselines
    // pays the per-access overhead; SQLGraph pays it once per query (its
    // whole traversal is one statement).
    let overhead = Duration::from_micros(cfg.call_overhead_us);
    let kv = RemoteGraph::new(kv, overhead);
    let native = RemoteGraph::new(native, overhead);
    let mut sql_times = Vec::new();
    let mut kv_times = Vec::new();
    let mut native_times = Vec::new();
    for q in queries {
        let pipeline = parse_query(q).expect("query parses");
        // Cross-system agreement (counts only, when the query is a count).
        if check_agreement {
            let a = count_of(&sql.query(q).expect("sqlgraph"));
            let b = interp::eval(*kv.inner(), &pipeline).expect("kv").len() as i64;
            let c = interp::eval(*native.inner(), &pipeline)
                .expect("native")
                .len() as i64;
            // For count() queries the interpreter returns one element whose
            // value is the count; compare against SQLGraph's scalar.
            if q.ends_with("count()") {
                let bv = interp::eval(*kv.inner(), &pipeline).expect("kv")[0]
                    .to_json()
                    .as_i64()
                    .unwrap_or(-1);
                let cv = interp::eval(*native.inner(), &pipeline).expect("native")[0]
                    .to_json()
                    .as_i64()
                    .unwrap_or(-1);
                assert_eq!(a, bv, "kv disagrees on {q}");
                assert_eq!(a, cv, "native disagrees on {q}");
            } else {
                let rows = sql.query(q).expect("sqlgraph").rows.len() as i64;
                assert_eq!(rows, b, "kv disagrees on {q}");
                assert_eq!(rows, c, "native disagrees on {q}");
            }
        }
        let t = mean_time(cfg.runs, || {
            spin(overhead); // one round trip
            let _ = sql.query(q).expect("sqlgraph");
        });
        sql_times.push(t.as_secs_f64() * 1e3);
        let t = mean_time(cfg.runs, || {
            let _ = interp::eval(&kv, &pipeline).expect("kv");
        });
        kv_times.push(t.as_secs_f64() * 1e3);
        let t = mean_time(cfg.runs, || {
            let _ = interp::eval(&native, &pipeline).expect("native");
        });
        native_times.push(t.as_secs_f64() * 1e3);
    }
    vec![
        SystemTimes {
            name: "SQLGraph",
            times_ms: sql_times,
        },
        SystemTimes {
            name: "Titan-like(KV)",
            times_ms: kv_times,
        },
        SystemTimes {
            name: "Neo4j-like",
            times_ms: native_times,
        },
    ]
}

/// Figures 8a, 8b, 8d: benchmark queries, path queries, and the summary.
pub fn fig8(cfg: &ReproConfig) -> String {
    let g = cfg.dbpedia();
    let sql = build_sqlgraph(&g.data);
    let kv = build_kvgraph(&g.data);
    let native = build_nativegraph(&g.data);

    let bench = benchmark_queries(&g);
    let paths = path_queries(&g);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8a — DBpedia benchmark queries ({} vertices, {} edges)",
        g.data.vertex_count(),
        g.data.edge_count()
    );
    let bench_times = run_query_set(cfg, &sql, &kv, &native, &bench, true);
    let _ = writeln!(
        out,
        "{:<5} {:>14} {:>16} {:>14}",
        "dq", "SQLGraph_ms", "Titan-like_ms", "Neo4j-like_ms"
    );
    for i in 0..bench.len() {
        let _ = writeln!(
            out,
            "dq{:<3} {:>14.3} {:>16.3} {:>14.3}",
            i + 1,
            bench_times[0].times_ms[i],
            bench_times[1].times_ms[i],
            bench_times[2].times_ms[i]
        );
    }
    let _ = writeln!(out, "\nFigure 8b — path queries");
    let path_times = run_query_set(cfg, &sql, &kv, &native, &paths, true);
    let _ = writeln!(
        out,
        "{:<5} {:>14} {:>16} {:>14}",
        "lq", "SQLGraph_ms", "Titan-like_ms", "Neo4j-like_ms"
    );
    for i in 0..paths.len() {
        let _ = writeln!(
            out,
            "lq{:<3} {:>14.3} {:>16.3} {:>14.3}",
            i + 1,
            path_times[0].times_ms[i],
            path_times[1].times_ms[i],
            path_times[2].times_ms[i]
        );
    }

    // Figure 8d: summary means. "Adjusted" excludes query 15 (index 14).
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mean_excl = |v: &[f64], skip: usize| {
        let total: f64 = v
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, x)| x)
            .sum();
        total / (v.len() - 1) as f64
    };
    let _ = writeln!(out, "\nFigure 8d — summary (mean ms)");
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>12}",
        "system", "benchmark", "adjusted", "path"
    );
    for i in 0..3 {
        let _ = writeln!(
            out,
            "{:<16} {:>12.3} {:>12.3} {:>12.3}",
            bench_times[i].name,
            mean(&bench_times[i].times_ms),
            mean_excl(&bench_times[i].times_ms, 14),
            mean(&path_times[i].times_ms)
        );
    }
    let _ = writeln!(
        out,
        "(paper: SQLGraph ~2x faster than Titan, ~8x faster than Neo4j)"
    );
    out
}

/// Figure 8c substitute: all stores here are in-memory, so the paper's
/// RAM-budget sweep becomes a dataset-scale sweep (documented in
/// EXPERIMENTS.md). The shape to hold: SQLGraph stays fastest at every
/// point.
pub fn fig8c(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8c (substituted) — mean query time vs dataset scale"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>14} {:>16} {:>14}",
        "scale", "edges", "SQLGraph_ms", "Titan-like_ms", "Neo4j-like_ms"
    );
    for factor in [0.25, 0.5, 1.0] {
        let scale = cfg.scale * factor;
        let g = gen_dbpedia(&DbpediaConfig::default().scaled(scale));
        let sql = build_sqlgraph(&g.data);
        let kv = build_kvgraph(&g.data);
        let native = build_nativegraph(&g.data);
        let queries: Vec<String> = benchmark_queries(&g)
            .into_iter()
            .chain(path_queries(&g))
            .collect();
        let times = run_query_set(cfg, &sql, &kv, &native, &queries, false);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let _ = writeln!(
            out,
            "{:<8.2} {:>10} {:>14.3} {:>16.3} {:>14.3}",
            factor,
            g.data.edge_count(),
            mean(&times[0].times_ms),
            mean(&times[1].times_ms),
            mean(&times[2].times_ms)
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 9 / Tables 6-7 — LinkBench
// ---------------------------------------------------------------------------

/// Throughput + per-op latency of one store under `requesters` threads.
fn run_linkbench<S: LinkOps>(
    store: &S,
    nodes: usize,
    requesters: usize,
    ops_per_requester: usize,
    seed: u64,
) -> (f64, Vec<(&'static str, LatencyStats)>) {
    use std::sync::Mutex;
    let collected: Mutex<Vec<(&'static str, LatencyStats)>> = Mutex::new(Vec::new());
    let start = Instant::now();
    crossbeam::thread::scope(|scope| {
        for r in 0..requesters {
            let collected = &collected;
            scope.spawn(move |_| {
                let mut wl = Workload::new(seed, r as u64, nodes, 32);
                let mut local: std::collections::HashMap<&'static str, LatencyStats> =
                    std::collections::HashMap::new();
                for _ in 0..ops_per_requester {
                    let op = wl.next_op();
                    let t0 = Instant::now();
                    let _ = store.apply(&op);
                    local.entry(op.name()).or_default().record(t0.elapsed());
                }
                let mut guard = collected.lock().expect("no poisoning");
                for (name, stats) in local {
                    guard.push((name, stats));
                }
            });
        }
    })
    .expect("threads join");
    let elapsed = start.elapsed().as_secs_f64();
    let total_ops = requesters * ops_per_requester;
    let mut merged: std::collections::HashMap<&'static str, LatencyStats> =
        std::collections::HashMap::new();
    for (name, stats) in collected.into_inner().expect("no poisoning") {
        merged.entry(name).or_default().merge(&stats);
    }
    let mut per_op: Vec<(&'static str, LatencyStats)> = merged.into_iter().collect();
    per_op.sort_by_key(|(name, _)| *name);
    (total_ops as f64 / elapsed, per_op)
}

/// Merge per-operation latency sets into one distribution for tail
/// reporting.
fn merged_latency(per_op: &[(&'static str, LatencyStats)]) -> LatencyStats {
    let mut all = LatencyStats::default();
    for (_, s) in per_op {
        all.merge(s);
    }
    all
}

/// `p50/p95/p99` of a latency distribution, in ms columns.
fn tail_columns(all: &LatencyStats) -> String {
    format!(
        "{:>9} {:>9} {:>9}",
        ms(all.percentile(50.0)),
        ms(all.percentile(95.0)),
        ms(all.percentile(99.0))
    )
}

/// §5.2 concurrency claim: LinkBench ops/sec against one `SqlGraph` from
/// N client threads, N = 1/2/4/8, with the scaling factor vs. one thread.
///
/// This is the repo's reproduction of the paper's headline result — the
/// relational store under concurrent load. Client threads issue the §5.2
/// op mix (Table 6 distribution) concurrently; the store serves them under
/// its per-table reader/writer locks. Intra-query parallelism stays in
/// auto mode: LinkBench point operations fall below the DOP threshold, so
/// inter-query concurrency is the axis being measured (cores permitting,
/// ops/sec should grow toward the hardware's parallelism and flatten at
/// the machine's core count).
pub fn throughput(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    let nodes = cfg.lb_nodes.first().copied().unwrap_or(1_000);
    let data = linkbench::generate(&LinkBenchConfig::with_nodes(nodes));
    let _ = writeln!(
        out,
        "LinkBench throughput — §5.2 op mix, one shared SQLGraph store\n\
         scale: {} nodes, {} edges; {} ops per client thread",
        data.vertex_count(),
        data.edge_count(),
        cfg.lb_ops
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>10} {:>9} {:>9} {:>9}",
        "threads", "ops/sec", "vs N=1", "p50 ms", "p95 ms", "p99 ms"
    );
    let overhead = Duration::from_micros(cfg.call_overhead_us);
    let mut base = 0.0f64;
    for &n in &[1usize, 2, 4, 8] {
        // A fresh store per N so earlier mutations don't skew later runs.
        let sql = build_sqlgraph(&data);
        let sql_ops = SqlLinkOps {
            graph: &sql,
            overhead,
        };
        let (tput, lat) = run_linkbench(&sql_ops, nodes, n, cfg.lb_ops, 11);
        if n == 1 {
            base = tput;
        }
        let _ = writeln!(
            out,
            "{:<10} {:>12.0} {:>9.2}x {}",
            n,
            tput,
            tput / base.max(1e-9),
            tail_columns(&merged_latency(&lat))
        );
    }
    let _ = writeln!(
        out,
        "(hardware ceiling: scaling flattens at the machine's core count — \
         {} available here)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    out
}

/// Throughput of one store under `requesters` threads with the read/write
/// balance pinned to `write_permille` (the within-class mix stays Table 6).
fn run_pinned_mix<S: LinkOps>(
    store: &S,
    nodes: usize,
    requesters: usize,
    ops_per_requester: usize,
    seed: u64,
    write_permille: u32,
) -> (f64, LatencyStats) {
    use std::sync::Mutex;
    let collected: Mutex<LatencyStats> = Mutex::new(LatencyStats::default());
    let start = Instant::now();
    crossbeam::thread::scope(|scope| {
        for r in 0..requesters {
            let collected = &collected;
            scope.spawn(move |_| {
                let mut wl = Workload::new(seed, r as u64, nodes, 32);
                let mut local = LatencyStats::default();
                for _ in 0..ops_per_requester {
                    let op = wl.next_op_mixed(write_permille);
                    let t0 = Instant::now();
                    let _ = store.apply(&op);
                    local.record(t0.elapsed());
                }
                collected.lock().expect("no poisoning").merge(&local);
            });
        }
    })
    .expect("threads join");
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let total_ops = requesters * ops_per_requester;
    (
        total_ops as f64 / elapsed,
        collected.into_inner().expect("no poisoning"),
    )
}

/// Shard-count sweep: LinkBench throughput against the hash-partitioned
/// store at N = 1/2/4/8 shards, read-only and 10%-write mixes.
///
/// Every LinkBench read keys on one node id and routes to exactly one
/// shard, so the sweep measures what partitioning buys under concurrent
/// point reads: N independent snapshot registries, commit locks, and
/// WAL/commit mutexes instead of one of each, plus smaller (more
/// cache-resident) per-shard tables. The headline claim is the `vs N=1`
/// column of the read row at 4 shards on a 1M+ node graph.
pub fn shard_sweep(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    let nodes = cfg.shard_nodes;
    let data = linkbench::generate(&LinkBenchConfig::with_nodes(nodes));
    // 16 closed-loop requesters — enough pressure that the single store's
    // serialization points (snapshot registry, commit mutex) convoy.
    let threads = 16usize;
    let ops_each = cfg.lb_ops.max(100) * 10;
    let _ = writeln!(
        out,
        "Shard-count sweep — LinkBench against the hash-partitioned store\n\
         scale: {} nodes, {} edges; {} threads, {} ops each; no per-call overhead",
        data.vertex_count(),
        data.edge_count(),
        threads,
        ops_each
    );
    let _ = writeln!(
        out,
        "{:<8} {:<7} {:>12} {:>10} {:>9} {:>9} {:>9}",
        "shards", "mix", "ops/sec", "vs N=1", "p50 ms", "p95 ms", "p99 ms"
    );
    let mut read_base = 0.0f64;
    let mut mixed_base = 0.0f64;
    let mut read_at_4 = 0.0f64;
    for &n in &[1usize, 2, 4, 8] {
        // Fresh store per shard count so earlier mutations don't skew
        // later cells.
        let g = build_sharded(&data, n);
        let ops = ShardedLinkOps {
            graph: &g,
            overhead: Duration::ZERO,
        };
        let (read_tput, read_lat) = run_pinned_mix(&ops, nodes, threads, ops_each, 17, 0);
        if n == 1 {
            read_base = read_tput;
        }
        if n == 4 {
            read_at_4 = read_tput;
        }
        let _ = writeln!(
            out,
            "{:<8} {:<7} {:>12.0} {:>9.2}x {}",
            n,
            "read",
            read_tput,
            read_tput / read_base.max(1e-9),
            tail_columns(&read_lat)
        );
        let (mixed_tput, mixed_lat) = run_pinned_mix(&ops, nodes, threads, ops_each, 19, 100);
        if n == 1 {
            mixed_base = mixed_tput;
        }
        let _ = writeln!(
            out,
            "{:<8} {:<7} {:>12.0} {:>9.2}x {}",
            n,
            "mixed",
            mixed_tput,
            mixed_tput / mixed_base.max(1e-9),
            tail_columns(&mixed_lat)
        );
    }
    let _ = writeln!(
        out,
        "(headline: 4-shard read throughput is {:.1}x the single-shard store; \
         {} cores available here)",
        read_at_4 / read_base.max(1e-9),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    out
}

/// One mixed run: `readers` client connections work through a fixed quota
/// of read operations while `writers` connections stream write
/// transactions continuously until the readers finish — every operation a
/// real socket round trip against the wire-protocol server at `addr`
/// (writes are explicit BEGIN … COMMIT sessions, one round trip per
/// statement). Returns aggregate (read ops/sec, write ops/sec). Dedicated
/// roles keep the writer pressure constant — in a closed-loop mix, blocked
/// readers would stop issuing writes too, hiding exactly the
/// reader/writer interference this experiment measures.
fn run_mixed(
    addr: SocketAddr,
    nodes: usize,
    readers: usize,
    writers: usize,
    reads_per_thread: usize,
    seed: u64,
) -> (f64, f64) {
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrd};
    let stop = AtomicBool::new(false);
    let wrote = AtomicU64::new(0);
    let done = AtomicUsize::new(0);
    let start = Instant::now();
    crossbeam::thread::scope(|scope| {
        for w in 0..writers {
            let (stop, wrote) = (&stop, &wrote);
            scope.spawn(move |_| {
                let mut ops = RemoteMixedOps::connect(addr).expect("writer connects");
                let mut wl = Workload::new(seed, 1_000 + w as u64, nodes, 32);
                while !stop.load(AtomicOrd::Relaxed) {
                    let op = wl.next_op_mixed(1000);
                    let _ = ops.apply(&op);
                    wrote.fetch_add(1, AtomicOrd::Relaxed);
                }
            });
        }
        for r in 0..readers {
            let (stop, done) = (&stop, &done);
            scope.spawn(move |_| {
                let mut ops = RemoteMixedOps::connect(addr).expect("reader connects");
                let mut wl = Workload::new(seed, r as u64, nodes, 32);
                for _ in 0..reads_per_thread {
                    let op = wl.next_op_mixed(0);
                    let _ = ops.apply(&op);
                }
                if done.fetch_add(1, AtomicOrd::Relaxed) + 1 == readers {
                    stop.store(true, AtomicOrd::Relaxed);
                }
            });
        }
    })
    .expect("threads join");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (
        (readers * reads_per_thread) as f64 / secs,
        wrote.load(AtomicOrd::Relaxed) as f64 / secs,
    )
}

/// Mixed read/write LinkBench: MVCC snapshot reads vs the per-table-lock
/// baseline.
///
/// Reader connections run LinkBench read operations against one shared
/// store behind the wire-protocol server while writer connections
/// continuously execute client-driven write transactions
/// (multi-statement, one real socket round trip per statement — see
/// [`RemoteMixedOps`]). The *lock* columns re-run each cell with
/// `set_coarse_writes(true)`, restoring pre-MVCC locking: a write
/// transaction holds its lock from begin to commit and readers queue
/// behind it. Under MVCC, readers execute against their snapshots and
/// never wait on the writers — the `rd gain` column is this
/// reproduction's headline.
pub fn throughput_mixed(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    let nodes = cfg.lb_nodes.first().copied().unwrap_or(1_000);
    let data = linkbench::generate(&LinkBenchConfig::with_nodes(nodes));
    // Reader quota per connection: large enough that each cell measures a
    // window of hundreds of milliseconds, not scheduler noise. Real
    // loopback round trips are slower than the simulated ones this
    // replaced, so the multiplier is smaller.
    let reads_per_thread = cfg.lb_ops.max(100) * 5;
    let _ = writeln!(
        out,
        "Mixed read/write LinkBench — MVCC snapshot reads vs per-table-lock baseline\n\
         scale: {} nodes, {} edges; {} read ops per reader connection; writers stream\n\
         client-driven transactions over the wire protocol (one TCP round trip per\n\
         statement, loopback)",
        data.vertex_count(),
        data.edge_count(),
        reads_per_thread
    );
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>12} {:>8} {:>14} {:>12}",
        "rd/wr", "lock rd/s", "mvcc rd/s", "rd gain", "lock wr/s", "mvcc wr/s"
    );
    let mut headline = 0.0f64;
    // (readers, writers): 8-thread cells model the 90/10 and 50/50 mixes
    // by role split; smaller cells chart the trend.
    for &(readers, writers) in &[(1usize, 1usize), (3, 1), (7, 1), (4, 4)] {
        // Fresh store and server per cell and mode so earlier mutations
        // (and accumulated version chains) don't skew later cells.
        let run = |coarse: bool| {
            let sql = Arc::new(build_sqlgraph(&data));
            sql.database().set_coarse_writes(coarse);
            let server = Server::start_local(Arc::clone(&sql)).expect("server starts");
            let result = run_mixed(
                server.local_addr(),
                nodes,
                readers,
                writers,
                reads_per_thread,
                13,
            );
            server.shutdown();
            result
        };
        let (lock_rd, lock_wr) = run(true);
        let (mvcc_rd, mvcc_wr) = run(false);
        let gain = mvcc_rd / lock_rd.max(1e-9);
        if (readers, writers) == (7, 1) {
            headline = gain;
        }
        let _ = writeln!(
            out,
            "{:<10} {:>14.0} {:>12.0} {:>7.2}x {:>14.0} {:>12.0}",
            format!("{readers}rd/{writers}wr"),
            lock_rd,
            mvcc_rd,
            gain,
            lock_wr,
            mvcc_wr
        );
    }
    let _ = writeln!(
        out,
        "(headline: 8 threads, 7 readers + 1 writer (~90/10): MVCC reader throughput \
         is {headline:.1}x the per-table-lock baseline)"
    );
    out
}

/// Connection-scalability sweep: aggregate LinkBench read throughput and
/// tail latency against one wire-protocol server as the number of
/// concurrent client sockets grows (default 1/8/64/256/1024).
///
/// Every client is a real TCP connection issuing §5.2 read operations as
/// framed round trips; the server multiplexes them onto its bounded
/// worker pool, so past the pool size the sweep measures queueing — the
/// dispatcher's frame assembly and the pool's fairness — rather than
/// engine parallelism. The total operation budget is fixed per row, so
/// high-connection rows measure many mostly-idle sockets (the LinkBench
/// requester model) rather than proportionally more work.
pub fn conn_sweep(cfg: &ReproConfig) -> String {
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrd};
    use std::sync::{Barrier, Mutex};

    let mut out = String::new();
    let nodes = cfg.lb_nodes.first().copied().unwrap_or(1_000);
    let data = linkbench::generate(&LinkBenchConfig::with_nodes(nodes));
    let sql = Arc::new(build_sqlgraph(&data));
    let server = Server::start_local(Arc::clone(&sql)).expect("server starts");
    let addr = server.local_addr();
    // Fixed total budget per row, with a floor so the widest rows still
    // give every connection a few timed operations.
    let total_ops = cfg.lb_ops.max(100) * 16;
    let _ = writeln!(
        out,
        "Connection sweep — LinkBench reads over the wire protocol, one server\n\
         scale: {} nodes, {} edges; ~{} total ops per row; {} worker threads",
        data.vertex_count(),
        data.edge_count(),
        total_ops,
        server.worker_count()
    );
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>12} {:>10} {:>9} {:>9} {:>9}",
        "clients", "ops each", "ops/sec", "vs N=1", "p50 ms", "p95 ms", "p99 ms"
    );
    let mut base = 0.0f64;
    for &n in &cfg.conn_counts {
        let ops_each = (total_ops / n).max(8);
        let collected = Arc::new(Mutex::new(LatencyStats::default()));
        let connect_failures = Arc::new(AtomicUsize::new(0));
        // All clients connect before the clock starts; the barrier holds
        // them at the line so the timed window is pure steady state.
        let barrier = Arc::new(Barrier::new(n + 1));
        let handles: Vec<_> = (0..n)
            .map(|r| {
                let collected = Arc::clone(&collected);
                let connect_failures = Arc::clone(&connect_failures);
                let barrier = Arc::clone(&barrier);
                std::thread::Builder::new()
                    .name(format!("conn-sweep-{r}"))
                    // Client threads only shuttle frames; small stacks
                    // keep 1024 of them cheap.
                    .stack_size(256 * 1024)
                    .spawn(move || {
                        // Retry the connect: a thousand simultaneous
                        // SYNs can outrun the accept loop's backlog.
                        let deadline = Instant::now() + Duration::from_secs(20);
                        let mut ops = loop {
                            match RemoteMixedOps::connect(addr) {
                                Ok(c) => break Some(c),
                                Err(_) if Instant::now() < deadline => {
                                    std::thread::sleep(Duration::from_millis(10))
                                }
                                Err(_) => break None,
                            }
                        };
                        barrier.wait();
                        let Some(ops) = ops.as_mut() else {
                            connect_failures.fetch_add(1, AtomicOrd::Relaxed);
                            return 0usize;
                        };
                        let mut wl = Workload::new(23, r as u64, nodes, 32);
                        let mut local = LatencyStats::default();
                        let mut done = 0usize;
                        for _ in 0..ops_each {
                            let op = wl.next_op_mixed(0);
                            let t0 = Instant::now();
                            if ops.apply(&op).is_ok() {
                                done += 1;
                            }
                            local.record(t0.elapsed());
                        }
                        collected.lock().expect("no poisoning").merge(&local);
                        done
                    })
            })
            .collect::<std::io::Result<Vec<_>>>()
            .expect("spawn client threads");
        barrier.wait();
        let start = Instant::now();
        let completed: usize = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum();
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let failures = connect_failures.load(AtomicOrd::Relaxed);
        let tput = completed as f64 / elapsed;
        if n == cfg.conn_counts[0] {
            base = tput;
        }
        let stats = collected.lock().expect("no poisoning").clone();
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>12.0} {:>9.2}x {}{}",
            n,
            ops_each,
            tput,
            tput / base.max(1e-9),
            tail_columns(&stats),
            if failures > 0 {
                format!("  ({failures} connects failed)")
            } else {
                String::new()
            }
        );
    }
    server.shutdown();
    let _ = writeln!(
        out,
        "(every client is a real TCP socket; the server's worker pool is bounded, so\n\
         rows past the pool size measure dispatcher/queueing behaviour, not engine\n\
         parallelism)"
    );
    out
}

/// Figure 9: LinkBench throughput across scales and requester counts.
pub fn fig9(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 9 — LinkBench throughput (op/sec)");
    for &nodes in &cfg.lb_nodes {
        let data = linkbench::generate(&LinkBenchConfig::with_nodes(nodes));
        let _ = writeln!(
            out,
            "\nscale: {} nodes, {} edges",
            data.vertex_count(),
            data.edge_count()
        );
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>16} {:>14}",
            "requesters", "SQLGraph", "Titan-like(KV)", "Neo4j-like"
        );
        for &req in &cfg.lb_requesters {
            let ops = cfg.lb_ops;
            let overhead = Duration::from_micros(cfg.call_overhead_us);
            let sql = build_sqlgraph(&data);
            let sql_ops = SqlLinkOps {
                graph: &sql,
                overhead,
            };
            let (sql_tput, _) = run_linkbench(&sql_ops, nodes, req, ops, 5);
            let kv = RemoteGraph::new(build_kvgraph(&data), overhead);
            let (kv_tput, _) = run_linkbench(&kv, nodes, req, ops, 5);
            let native = RemoteGraph::new(build_nativegraph(&data), overhead);
            let (native_tput, _) = run_linkbench(&native, nodes, req, ops, 5);
            let _ = writeln!(
                out,
                "{:<12} {:>12.0} {:>16.0} {:>14.0}",
                req, sql_tput, kv_tput, native_tput
            );
        }
    }
    let _ = writeln!(
        out,
        "(paper shape: SQLGraph throughput scales with requesters; others flatten)"
    );
    out
}

/// Tables 6/7: per-operation latency mean(max). `large` selects the last
/// (largest) configured scale and the highest requester count.
pub fn table67(cfg: &ReproConfig, large: bool) -> String {
    let nodes = if large {
        *cfg.lb_nodes.last().expect("non-empty")
    } else {
        cfg.lb_nodes[cfg.lb_nodes.len() / 2]
    };
    let requesters = if large {
        *cfg.lb_requesters.last().expect("non-empty")
    } else {
        cfg.lb_requesters[cfg.lb_requesters.len() / 2]
    };
    let data = linkbench::generate(&LinkBenchConfig::with_nodes(nodes));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table {} — per-operation latency in ms, mean(max): {} nodes, {} requesters",
        if large { 7 } else { 6 },
        nodes,
        requesters
    );

    let overhead = Duration::from_micros(cfg.call_overhead_us);
    let sql = build_sqlgraph(&data);
    let sql_ops = SqlLinkOps {
        graph: &sql,
        overhead,
    };
    let (_, sql_lat) = run_linkbench(&sql_ops, nodes, requesters, cfg.lb_ops, 6);
    let native = RemoteGraph::new(build_nativegraph(&data), overhead);
    let (_, native_lat) = run_linkbench(&native, nodes, requesters, cfg.lb_ops, 6);
    let kv = RemoteGraph::new(build_kvgraph(&data), overhead);
    let (_, kv_lat) = run_linkbench(&kv, nodes, requesters, cfg.lb_ops, 6);

    let find = |set: &[(&'static str, LatencyStats)], name: &str| -> String {
        set.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| format!("{}({})", ms(s.mean()), ms(s.max())))
            .unwrap_or_else(|| "-".into())
    };
    let _ = writeln!(
        out,
        "{:<16} {:>20} {:>20} {:>20}",
        "operation", "SQLGraph", "Titan-like(KV)", "Neo4j-like"
    );
    for op in [
        "add node",
        "update node",
        "delete node",
        "get node",
        "add link",
        "delete link",
        "update link",
        "count link",
        "multiget link",
        "get link list",
    ] {
        let _ = writeln!(
            out,
            "{:<16} {:>20} {:>20} {:>20}",
            op,
            find(&sql_lat, op),
            find(&kv_lat, op),
            find(&native_lat, op)
        );
    }
    let _ = writeln!(
        out,
        "(paper shape: SQLGraph slower on delete node/add link/update link at mid scale, \
         fastest reads; wins everything at the largest scale)"
    );
    out
}

// ---------------------------------------------------------------------------
// §5.1 — storage footprint comparison
// ---------------------------------------------------------------------------

/// Approximate storage footprints for the DBpedia-like graph.
pub fn sizes(cfg: &ReproConfig) -> String {
    let g = cfg.dbpedia();
    let sql = build_sqlgraph(&g.data);
    let kv = build_kvgraph(&g.data);
    let native = build_nativegraph(&g.data);
    let mut out = String::new();
    let _ = writeln!(out, "§5.1 — storage footprint (approximate bytes)");
    let _ = writeln!(out, "{:<16} {:>14}", "system", "bytes");
    let _ = writeln!(
        out,
        "{:<16} {:>14}",
        "SQLGraph",
        sql.database().estimated_bytes()
    );
    let _ = writeln!(out, "{:<16} {:>14}", "Titan-like(KV)", kv.approx_bytes());
    let _ = writeln!(out, "{:<16} {:>14}", "Neo4j-like", native.approx_bytes());
    let _ = writeln!(
        out,
        "(paper: SQLGraph 66GB < Neo4j 98GB < Titan 301GB on DBpedia — redundancy \
         is cheaper than KV blow-up)"
    );
    out
}

// ---------------------------------------------------------------------------
// Durability — recovery time: cold WAL replay vs snapshot + tail
// ---------------------------------------------------------------------------

/// Crash-recovery cost as a function of log length: reopen a database whose
/// entire history lives in one WAL segment (cold replay is O(ops)), then the
/// same history with a checkpoint taken just before the last few commits
/// (reopen is snapshot load + O(tail)).
pub fn recovery(cfg: &ReproConfig) -> String {
    use sqlgraph_rel::Database;

    let tail_ops = 100usize;
    let op_counts: Vec<usize> = [10_000usize, 100_000, 1_000_000]
        .iter()
        .map(|&n| ((n as f64 * cfg.scale) as usize).max(1_000))
        .collect();

    let dir = std::env::temp_dir().join(format!("sqlgraph-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");

    // One committed transaction per op: mostly inserts, with updates and
    // deletes mixed in so replay exercises every record kind.
    let build = |path: &std::path::Path, ops: usize, checkpoint_at: Option<usize>| -> u64 {
        let db = Database::open(path).expect("open for build");
        db.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
            .expect("ddl");
        db.execute("CREATE INDEX kv_v ON kv (v)").expect("ddl");
        for i in 0..ops {
            if checkpoint_at == Some(i) {
                db.checkpoint().expect("checkpoint");
            }
            let sql = match i % 20 {
                18 if i > 0 => format!("UPDATE kv SET v = 'u{i}' WHERE id = {}", i - 1),
                19 if i > 1 => format!("DELETE FROM kv WHERE id = {}", i - 2),
                _ => format!("INSERT INTO kv VALUES ({i}, 'v{i}')"),
            };
            db.execute(&sql).expect("op");
        }
        drop(db);
        // Size of the gen-0 segment (the builds without a checkpoint keep
        // their whole history there).
        std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    };

    let mut out = String::new();
    let _ = writeln!(out, "Durability — recovery time (reopen latency)");
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>16} {:>20} {:>12}",
        "ops", "wal bytes", "cold replay ms", "snapshot+tail ms", "tail commits"
    );
    for (idx, &ops) in op_counts.iter().enumerate() {
        // Cold: the whole history is one WAL segment.
        let cold_path = dir.join(format!("cold-{idx}.wal"));
        let wal_bytes = build(&cold_path, ops, None);
        let start = Instant::now();
        let db = Database::open(&cold_path).expect("cold reopen");
        let cold = start.elapsed();
        let cold_commits = db.recovery_report().expect("report").commits_replayed;
        assert_eq!(cold_commits as usize, ops + 2, "cold replay covers all ops");
        drop(db);

        // Checkpointed: same history, snapshot taken `tail_ops` before the end.
        let ckpt_path = dir.join(format!("ckpt-{idx}.wal"));
        build(&ckpt_path, ops, Some(ops.saturating_sub(tail_ops)));
        let start = Instant::now();
        let db = Database::open(&ckpt_path).expect("ckpt reopen");
        let warm = start.elapsed();
        let report = db.recovery_report().expect("report").clone();
        assert!(report.snapshot_gen.is_some(), "snapshot must be used");
        assert_eq!(
            report.commits_replayed as usize, tail_ops,
            "checkpointed reopen replays only the post-checkpoint tail"
        );
        drop(db);

        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>16} {:>20} {:>12}",
            ops,
            wal_bytes,
            ms(cold),
            ms(warm),
            report.commits_replayed
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = writeln!(
        out,
        "(cold replay re-executes every committed operation; a checkpointed \
         database deserializes the final state and replays only the \
         post-checkpoint tail — O(state + delta), not O(history))"
    );
    out
}

// ---------------------------------------------------------------------------
// Longpath — CSR adjacency + factorized execution vs the row templates
// ---------------------------------------------------------------------------

/// The 11 long-path queries (lq1–lq11) plus dq15 (`g.V.out.out.dedup().count()`)
/// under two configurations of the *same* store: the baseline arm disables the
/// CSR access path and the factorized translator (pure row-at-a-time index
/// joins, the paper's templates), the optimized arm enables both. Counts must
/// agree exactly; the report shows per-query speedup.
pub fn longpath(cfg: &ReproConfig) -> String {
    let g = cfg.dbpedia();
    let sql = build_sqlgraph(&g.data);
    let row_opts = TranslateOptions {
        adjacency: AdjacencyStrategy::Auto,
        factorize: false,
    };
    let fact_opts = TranslateOptions::default();

    let mut queries: Vec<(String, String)> = path_queries(&g)
        .into_iter()
        .enumerate()
        .map(|(i, q)| (format!("lq{}", i + 1), q))
        .collect();
    queries.push(("dq15".into(), benchmark_queries(&g)[14].clone()));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Longpath — row-at-a-time index joins vs CSR + factorized lists"
    );
    let _ = writeln!(
        out,
        "{:<5} {:>12} {:>12} {:>9}",
        "q", "row_ms", "csr_ms", "speedup"
    );
    let mut row_total = 0.0;
    let mut csr_total = 0.0;
    for (name, q) in &queries {
        // Correctness first: both arms must return the same answer.
        sql.database().set_csr_enabled(false);
        let a = count_of(&sql.query_with(q, row_opts).expect("row"));
        sql.database().set_csr_enabled(true);
        let b = count_of(&sql.query_with(q, fact_opts).expect("csr"));
        assert_eq!(a, b, "csr/factorized arm disagrees on {name}");

        sql.database().set_csr_enabled(false);
        let t_row = mean_time(cfg.runs, || {
            let _ = sql.query_with(q, row_opts).expect("row");
        });
        sql.database().set_csr_enabled(true);
        let _ = sql.query_with(q, fact_opts); // warm the CSR cache
        let t_csr = mean_time(cfg.runs, || {
            let _ = sql.query_with(q, fact_opts).expect("csr");
        });
        row_total += t_row.as_secs_f64();
        csr_total += t_csr.as_secs_f64();
        let _ = writeln!(
            out,
            "{:<5} {:>12} {:>12} {:>8.1}x",
            name,
            ms(t_row),
            ms(t_csr),
            t_row.as_secs_f64() / t_csr.as_secs_f64().max(1e-9)
        );
    }
    let _ = writeln!(
        out,
        "total: row {:.1} ms vs csr {:.1} ms ({:.1}x) — targets: >=5x on lq9/lq11, >=2x on dq15",
        1e3 * row_total,
        1e3 * csr_total,
        row_total / csr_total.max(1e-9)
    );
    out
}
