//! Timing helpers for the reproduction harness.

use std::time::{Duration, Instant};

/// Run `f` `runs + 1` times, discard the first (cold) run — the paper's
/// warm-cache methodology (§3.2) — and return the mean of the rest.
pub fn mean_time(runs: usize, mut f: impl FnMut()) -> Duration {
    assert!(runs >= 1);
    f(); // cold run, discarded
    let mut total = Duration::ZERO;
    for _ in 0..runs {
        let start = Instant::now();
        f();
        total += start.elapsed();
    }
    total / runs as u32
}

/// Time a single invocation.
pub fn once(mut f: impl FnMut()) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Simple latency accumulator: mean and max per key.
#[derive(Debug, Default, Clone)]
pub struct LatencyStats {
    samples: Vec<Duration>,
}

impl LatencyStats {
    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d);
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }

    /// Maximum latency.
    pub fn max(&self) -> Duration {
        self.samples.iter().max().copied().unwrap_or(Duration::ZERO)
    }

    /// p-th percentile (0-100).
    pub fn percentile(&self, p: f64) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }
}

/// Millisecond rendering with 3 significant decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_time_discards_first_run() {
        let mut calls = 0;
        let d = mean_time(3, || {
            calls += 1;
        });
        assert_eq!(calls, 4);
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn latency_stats() {
        let mut s = LatencyStats::default();
        for msec in [1u64, 2, 3, 10] {
            s.record(Duration::from_millis(msec));
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), Duration::from_millis(4));
        assert_eq!(s.max(), Duration::from_millis(10));
        assert_eq!(s.percentile(0.0), Duration::from_millis(1));
        assert_eq!(s.percentile(100.0), Duration::from_millis(10));
    }

    #[test]
    fn tail_percentiles() {
        // 1..=100 ms: the nearest-rank estimate lands on the intuitive
        // sample for the percentiles the throughput reports print.
        let mut s = LatencyStats::default();
        for msec in 1..=100u64 {
            s.record(Duration::from_millis(msec));
        }
        assert_eq!(s.percentile(50.0), Duration::from_millis(51));
        assert_eq!(s.percentile(95.0), Duration::from_millis(95));
        assert_eq!(s.percentile(99.0), Duration::from_millis(99));
        // Insertion order must not matter.
        let mut rev = LatencyStats::default();
        for msec in (1..=100u64).rev() {
            rev.record(Duration::from_millis(msec));
        }
        assert_eq!(rev.percentile(95.0), s.percentile(95.0));
        // An outlier in the top 1% of ranks dominates p99 but not p50.
        let mut spike = LatencyStats::default();
        for _ in 0..9 {
            spike.record(Duration::from_millis(1));
        }
        spike.record(Duration::from_secs(1));
        assert_eq!(spike.percentile(50.0), Duration::from_millis(1));
        assert_eq!(spike.percentile(99.0), Duration::from_secs(1));
    }

    #[test]
    fn percentile_of_merged_shards_matches_global() {
        // Per-thread accumulators merged into one must yield the same
        // tail as recording globally — the shard sweep relies on this.
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        let mut global = LatencyStats::default();
        for msec in 1..=50u64 {
            a.record(Duration::from_millis(msec));
            global.record(Duration::from_millis(msec));
        }
        for msec in 51..=100u64 {
            b.record(Duration::from_millis(msec));
            global.record(Duration::from_millis(msec));
        }
        let mut merged = LatencyStats::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), global.count());
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(merged.percentile(p), global.percentile(p));
        }
    }
}
