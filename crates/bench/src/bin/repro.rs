//! `repro` — regenerate the SQLGraph paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale F] [--runs N] [--quick]
//!
//! experiments:
//!   fig3     Table 1 + Figure 3 (adjacency micro-benchmark)
//!   fig4     Table 2 + Figure 4 (attribute lookups)
//!   table3   Table 3 (hash table characteristics)
//!   table4   Table 4 (EA vs IPA+ISA neighbor lookups)
//!   fig6     Figure 6 (long paths: OPA+OSA vs EA)
//!   fig8     Figures 8a/8b/8d (DBpedia benchmark, 3 systems)
//!   fig8c    Figure 8c substitute (scale sweep)
//!   fig9     Figure 9 (LinkBench throughput)
//!   throughput  §5.2 concurrency: ops/sec at 1/2/4/8 client threads
//!   throughput-mixed  mixed read/write over the wire protocol: MVCC vs lock
//!   conn-sweep  wire protocol: ops/sec + tails at 1/8/64/256/1024 sockets
//!   shard-sweep hash-partitioned store: ops/sec at 1/2/4/8 shards
//!   table6   Table 6 (per-op latency, mid scale)
//!   table7   Table 7 (per-op latency, largest scale)
//!   sizes    §5.1 storage footprints
//!   recovery Durability: cold WAL replay vs snapshot + tail reopen latency
//!   all      everything above
//! ```

use sqlgraph_bench::experiments::{self, ReproConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let mut config = ReproConfig::default();
    let mut experiment = String::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => config = ReproConfig::quick(),
            "--scale" => {
                i += 1;
                config.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--runs" => {
                i += 1;
                config.runs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--runs needs an integer"));
            }
            "--lb-ops" => {
                i += 1;
                config.lb_ops = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--lb-ops needs an integer"));
            }
            "--shard-nodes" => {
                i += 1;
                config.shard_nodes = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--shard-nodes needs an integer"));
            }
            name if !name.starts_with('-') => experiment = name.to_string(),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if experiment.is_empty() {
        print_usage();
        return;
    }

    let run = |name: &str, config: &ReproConfig| {
        let report = match name {
            "fig3" => experiments::fig3(config),
            "fig4" => experiments::fig4(config),
            "table3" => experiments::table3(config),
            "table4" => experiments::table4(config),
            "fig6" => experiments::fig6(config),
            "longpath" => experiments::longpath(config),
            "fig8" => experiments::fig8(config),
            "fig8c" => experiments::fig8c(config),
            "fig9" => experiments::fig9(config),
            "throughput" => experiments::throughput(config),
            "throughput-mixed" => experiments::throughput_mixed(config),
            "conn-sweep" => experiments::conn_sweep(config),
            "shard-sweep" => experiments::shard_sweep(config),
            "table6" => experiments::table67(config, false),
            "table7" => experiments::table67(config, true),
            "sizes" => experiments::sizes(config),
            "recovery" => experiments::recovery(config),
            other => die(&format!("unknown experiment '{other}'")),
        };
        println!("{report}");
    };

    if experiment == "all" {
        for name in [
            "fig3",
            "fig4",
            "table3",
            "table4",
            "fig6",
            "longpath",
            "fig8",
            "fig8c",
            "fig9",
            "throughput",
            "throughput-mixed",
            "conn-sweep",
            "shard-sweep",
            "table6",
            "table7",
            "sizes",
            "recovery",
        ] {
            println!("==================================================================");
            run(name, &config);
        }
    } else {
        run(&experiment, &config);
    }
}

fn print_usage() {
    eprintln!(
        "usage: repro <fig3|fig4|table3|table4|fig6|longpath|fig8|fig8c|fig9|throughput|throughput-mixed|conn-sweep|shard-sweep|table6|table7|sizes|recovery|all> \
         [--scale F] [--runs N] [--lb-ops N] [--shard-nodes N] [--quick]"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
