//! LinkBench operation drivers.
//!
//! [`LinkOps`] is the store-facing interface for one LinkBench operation.
//! The blanket Blueprints implementation executes each operation the way a
//! Blueprints-based store does — several API calls per compound operation
//! (the paper's point about "atomic graph operations in sequence"). The
//! [`SqlLinkOps`] wrapper gives SQLGraph its paper behaviour: reads become
//! one indexed SQL statement, writes run as the multi-table stored
//! procedures.

use sqlgraph_core::{ShardedGraph, SqlGraph};
use sqlgraph_datagen::linkbench::Op;
use sqlgraph_gremlin::{Blueprints, Direction};
use sqlgraph_json::Json;
use sqlgraph_rel::Value;

/// Execute one LinkBench operation. Errors from racing requesters (e.g.
/// the node was deleted concurrently) are normal and reported as `Ok(false)`.
pub trait LinkOps: Sync {
    /// Apply the operation; `Ok(true)` if it did real work.
    fn apply(&self, op: &Op) -> Result<bool, String>;
}

/// Find the edge id of `(src) -ltype-> (dst)` via Blueprints calls.
fn find_link<G: Blueprints + ?Sized>(g: &G, src: i64, dst: i64, ltype: &str) -> Option<i64> {
    let labels = [ltype.to_string()];
    g.edges_of(src, Direction::Out, &labels)
        .into_iter()
        .find(|&e| g.edge_target(e) == Some(dst))
}

impl<G: Blueprints + ?Sized> LinkOps for G {
    fn apply(&self, op: &Op) -> Result<bool, String> {
        match op {
            Op::AddNode { props } => {
                self.add_vertex(props).map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::UpdateNode { id } => {
                if !self.vertex_exists(*id) {
                    return Ok(false);
                }
                let version = self
                    .vertex_property(*id, "version")
                    .and_then(|v| v.as_i64())
                    .unwrap_or(0);
                self.set_vertex_property(*id, "version", &Json::int(version + 1))
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::DeleteNode { id } => {
                if !self.vertex_exists(*id) {
                    return Ok(false);
                }
                // Racing delete is fine.
                Ok(self.remove_vertex(*id).is_ok())
            }
            Op::GetNode { id } => {
                let _ = self.vertex_property(*id, "data");
                Ok(true)
            }
            Op::AddLink { src, dst, ltype } => {
                if !self.vertex_exists(*src) || !self.vertex_exists(*dst) {
                    return Ok(false);
                }
                let props = vec![
                    ("visibility".to_string(), Json::int(1)),
                    ("timestamp".to_string(), Json::int(1_500_000_000)),
                ];
                Ok(self.add_edge(*src, *dst, ltype, &props).is_ok())
            }
            Op::DeleteLink { src, dst, ltype } => match find_link(self, *src, *dst, ltype) {
                Some(e) => Ok(self.remove_edge(e).is_ok()),
                None => Ok(false),
            },
            Op::UpdateLink { src, dst, ltype } => match find_link(self, *src, *dst, ltype) {
                Some(e) => Ok(self
                    .set_edge_property(e, "timestamp", &Json::int(1_600_000_000))
                    .is_ok()),
                None => Ok(false),
            },
            Op::CountLink { id, ltype } => {
                let _ = self
                    .edges_of(*id, Direction::Out, &[ltype.to_string()])
                    .len();
                Ok(true)
            }
            Op::MultigetLink { src, dsts, ltype } => {
                for dst in dsts {
                    let _ = find_link(self, *src, *dst, ltype);
                }
                Ok(true)
            }
            Op::GetLinkList { id, ltype } => {
                // One call for the edge list, one per edge for attributes —
                // the chatty access pattern of Blueprints stores.
                let edges = self.edges_of(*id, Direction::Out, &[ltype.to_string()]);
                for e in edges {
                    let _ = self.edge_property(e, "timestamp");
                    let _ = self.edge_target(e);
                }
                Ok(true)
            }
        }
    }
}

/// SQLGraph's set-oriented LinkBench driver: one SQL statement per read,
/// stored-procedure transactions per write. `overhead` is charged once per
/// operation — the single client/server round trip.
pub struct SqlLinkOps<'g> {
    /// The store.
    pub graph: &'g SqlGraph,
    /// One round trip per operation.
    pub overhead: std::time::Duration,
}

impl LinkOps for SqlLinkOps<'_> {
    fn apply(&self, op: &Op) -> Result<bool, String> {
        if !self.overhead.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < self.overhead {
                std::hint::spin_loop();
            }
        }
        let db = self.graph.database();
        match op {
            // Writes are the store's transactional procedures.
            Op::AddNode { .. }
            | Op::UpdateNode { .. }
            | Op::DeleteNode { .. }
            | Op::AddLink { .. }
            | Op::UpdateLink { .. }
            | Op::DeleteLink { .. } => {
                // Blueprints impl of SqlGraph already routes through the
                // stored procedures; reuse it for writes.
                let g: &SqlGraph = self.graph;
                <SqlGraph as LinkOps>::apply(g, op)
            }
            // Reads compile to single indexed statements.
            Op::GetNode { id } => {
                db.execute_with_params("SELECT attr FROM va WHERE vid = ?", &[Value::Int(*id)])
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::CountLink { id, ltype } => {
                db.execute_with_params(
                    "SELECT COUNT(*) FROM ea WHERE inv = ? AND lbl = ?",
                    &[Value::Int(*id), Value::str(*ltype)],
                )
                .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::MultigetLink { src, dsts, ltype } => {
                let list = dsts
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                db.execute_with_params(
                    &format!(
                        "SELECT eid, outv FROM ea WHERE inv = ? AND lbl = ? AND outv IN ({list})"
                    ),
                    &[Value::Int(*src), Value::str(*ltype)],
                )
                .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::GetLinkList { id, ltype } => {
                db.execute_with_params(
                    "SELECT eid, outv, attr FROM ea WHERE inv = ? AND lbl = ?",
                    &[Value::Int(*id), Value::str(*ltype)],
                )
                .map_err(|e| e.to_string())?;
                Ok(true)
            }
        }
    }
}

/// Set-oriented LinkBench driver over the hash-partitioned store.
///
/// Every LinkBench read keys on a single node id, and an out-edge's `EA`
/// row lives on its source's shard — so each read routes to exactly one
/// shard's database and runs the same single indexed statement
/// [`SqlLinkOps`] issues. Writes go through the sharded graph procedures
/// (cross-shard links commit two-shard atomically under the shared
/// timestamp oracle).
pub struct ShardedLinkOps<'g> {
    /// The partitioned store.
    pub graph: &'g ShardedGraph,
    /// One round trip per operation.
    pub overhead: std::time::Duration,
}

impl LinkOps for ShardedLinkOps<'_> {
    fn apply(&self, op: &Op) -> Result<bool, String> {
        if !self.overhead.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < self.overhead {
                std::hint::spin_loop();
            }
        }
        match op {
            Op::AddNode { .. }
            | Op::UpdateNode { .. }
            | Op::DeleteNode { .. }
            | Op::AddLink { .. }
            | Op::UpdateLink { .. }
            | Op::DeleteLink { .. } => {
                // Blueprints impl of ShardedGraph routes through the
                // sharded stored procedures; reuse it for writes.
                let g: &ShardedGraph = self.graph;
                <ShardedGraph as LinkOps>::apply(g, op)
            }
            Op::GetNode { id } => {
                self.graph
                    .shard_for(*id)
                    .database()
                    .execute_with_params("SELECT attr FROM va WHERE vid = ?", &[Value::Int(*id)])
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::CountLink { id, ltype } => {
                self.graph
                    .shard_for(*id)
                    .database()
                    .execute_with_params(
                        "SELECT COUNT(*) FROM ea WHERE inv = ? AND lbl = ?",
                        &[Value::Int(*id), Value::str(*ltype)],
                    )
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::MultigetLink { src, dsts, ltype } => {
                let list = dsts
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                self.graph
                    .shard_for(*src)
                    .database()
                    .execute_with_params(
                        &format!(
                            "SELECT eid, outv FROM ea WHERE inv = ? AND lbl = ? AND outv IN ({list})"
                        ),
                        &[Value::Int(*src), Value::str(*ltype)],
                    )
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::GetLinkList { id, ltype } => {
                self.graph
                    .shard_for(*id)
                    .database()
                    .execute_with_params(
                        "SELECT eid, outv, attr FROM ea WHERE inv = ? AND lbl = ?",
                        &[Value::Int(*id), Value::str(*ltype)],
                    )
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
        }
    }
}

/// Client-driven transactional writes for the mixed throughput benchmark.
///
/// Reads behave exactly like [`SqlLinkOps`]: one SQL statement, one
/// round trip. Writes run as explicit multi-statement graph transactions
/// ([`SqlGraph::transaction`]) the way the paper's client executes its
/// stored procedures — one round trip per statement *with the
/// transaction open*. Under MVCC the open transaction costs readers
/// nothing; under the per-table-lock baseline every round trip extends
/// the window in which readers queue behind the writer. That difference
/// is the quantity `throughput-mixed` measures.
pub struct MixedSqlOps<'g> {
    /// The store.
    pub graph: &'g SqlGraph,
    /// One client/server round trip, charged per statement.
    pub roundtrip: std::time::Duration,
}

impl MixedSqlOps<'_> {
    /// One client/server round trip. The server core is *idle* while the
    /// client has the ball, so this sleeps (yields the CPU) rather than
    /// busy-waiting — a writer that holds locks across round trips keeps
    /// holding them while other threads could be doing useful work.
    fn spin(&self, round_trips: u64) {
        if self.roundtrip.is_zero() || round_trips == 0 {
            return;
        }
        std::thread::sleep(self.roundtrip * round_trips as u32);
    }

    /// `eid` of `(src) -ltype-> (dst)` read inside the transaction.
    fn find_link_tx(
        tx: &mut sqlgraph_core::GraphTxn<'_>,
        src: i64,
        dst: i64,
        ltype: &str,
    ) -> Result<Option<i64>, String> {
        let rel = tx
            .sql_with_params(
                "SELECT eid FROM ea WHERE inv = ? AND outv = ? AND lbl = ?",
                &[Value::Int(src), Value::Int(dst), Value::str(ltype)],
            )
            .map_err(|e| e.to_string())?;
        Ok(rel.rows.first().and_then(|r| r[0].as_int()))
    }
}

impl LinkOps for MixedSqlOps<'_> {
    fn apply(&self, op: &Op) -> Result<bool, String> {
        if !op.is_write() {
            // Single-statement reads: one statement, one round trip
            // (modelled as idle time, same as the write path's).
            let done = SqlLinkOps {
                graph: self.graph,
                overhead: std::time::Duration::ZERO,
            }
            .apply(op);
            self.spin(1);
            return done;
        }
        // Writes: BEGIN, then the op's statements, then COMMIT — one
        // round trip per SQL statement the procedures actually execute
        // (graph calls like add_edge run several: the EA insert plus
        // adjacency maintenance). `charge` reads the transaction's
        // statement counter and sleeps for the newly executed ones.
        // Dropping the handle on an early return rolls back.
        let mut tx = self.graph.transaction();
        self.spin(1); // BEGIN round trip
        let seen = std::cell::Cell::new(0u64);
        macro_rules! charge {
            () => {{
                let now = tx.statements_executed();
                self.spin(now - seen.get());
                seen.set(now);
            }};
        }
        let did_work = match op {
            Op::AddNode { props } => {
                tx.add_vertex(props).map_err(|e| e.to_string())?;
                charge!();
                true
            }
            Op::UpdateNode { id } => {
                let rel = tx
                    .sql_with_params(
                        "SELECT JSON_VAL(attr, 'version') FROM va WHERE vid = ?",
                        &[Value::Int(*id)],
                    )
                    .map_err(|e| e.to_string())?;
                charge!();
                let Some(row) = rel.rows.first() else {
                    return Ok(false);
                };
                let version = row[0].as_int().unwrap_or(0);
                tx.set_vertex_property(*id, "version", &Json::int(version + 1))
                    .map_err(|e| e.to_string())?;
                charge!();
                true
            }
            Op::DeleteNode { id } => {
                // Racing delete is fine; the §4.5.2 procedure itself is
                // several statements (edge deletes + negative-ID marks).
                let removed = tx.remove_vertex(*id);
                charge!();
                if removed.is_err() {
                    return Ok(false);
                }
                true
            }
            Op::AddLink { src, dst, ltype } => {
                let props = vec![
                    ("visibility".to_string(), Json::int(1)),
                    ("timestamp".to_string(), Json::int(1_500_000_000)),
                ];
                let added = tx.add_edge(*src, *dst, ltype, &props);
                charge!();
                if added.is_err() {
                    return Ok(false);
                }
                true
            }
            Op::DeleteLink { src, dst, ltype } => {
                let found = Self::find_link_tx(&mut tx, *src, *dst, ltype)?;
                charge!();
                match found {
                    Some(e) => {
                        let ok = tx.remove_edge(e).is_ok();
                        charge!();
                        ok
                    }
                    None => return Ok(false),
                }
            }
            Op::UpdateLink { src, dst, ltype } => {
                let found = Self::find_link_tx(&mut tx, *src, *dst, ltype)?;
                charge!();
                match found {
                    Some(e) => {
                        let ok = tx
                            .set_edge_property(e, "timestamp", &Json::int(1_600_000_000))
                            .is_ok();
                        charge!();
                        ok
                    }
                    None => return Ok(false),
                }
            }
            _ => unreachable!("read ops handled above"),
        };
        tx.commit().map_err(|e| e.to_string())?;
        self.spin(1); // COMMIT round trip
        Ok(did_work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgraph_baselines::NativeGraph;
    use sqlgraph_datagen::linkbench::{generate, LinkBenchConfig, Workload};

    #[test]
    fn drivers_agree_on_a_small_run() {
        let config = LinkBenchConfig {
            nodes: 60,
            ..LinkBenchConfig::default()
        };
        let data = generate(&config);

        let sql = SqlGraph::new_in_memory();
        data.load_blueprints(&sql).unwrap();
        let native = NativeGraph::new();
        data.load_blueprints(&native).unwrap();

        let sql_ops = SqlLinkOps {
            graph: &sql,
            overhead: std::time::Duration::ZERO,
        };
        let mut wl = Workload::new(11, 0, config.nodes, 8);
        for _ in 0..300 {
            let op = wl.next_op();
            let a = sql_ops.apply(&op).unwrap();
            let b = LinkOps::apply(&native, &op).unwrap();
            // Write effectiveness must agree so the stores stay in sync.
            if op.is_write() {
                assert_eq!(a, b, "write disagreement on {op:?}");
            }
        }
        // Final edge counts agree.
        assert_eq!(sql.database().table_len("ea").unwrap(), native.edge_count());
    }
}
