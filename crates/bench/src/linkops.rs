//! LinkBench operation drivers.
//!
//! [`LinkOps`] is the store-facing interface for one LinkBench operation.
//! The blanket Blueprints implementation executes each operation the way a
//! Blueprints-based store does — several API calls per compound operation
//! (the paper's point about "atomic graph operations in sequence"). The
//! [`SqlLinkOps`] wrapper gives SQLGraph its paper behaviour: reads become
//! one indexed SQL statement, writes run as the multi-table stored
//! procedures.

use sqlgraph_core::{GraphTxn, ShardedGraph, SqlGraph};
use sqlgraph_datagen::linkbench::Op;
use sqlgraph_gremlin::{Blueprints, Direction};
use sqlgraph_json::Json;
use sqlgraph_rel::{Relation, Value};
use sqlgraph_server::Client;

/// Execute one LinkBench operation. Errors from racing requesters (e.g.
/// the node was deleted concurrently) are normal and reported as `Ok(false)`.
pub trait LinkOps: Sync {
    /// Apply the operation; `Ok(true)` if it did real work.
    fn apply(&self, op: &Op) -> Result<bool, String>;
}

/// Find the edge id of `(src) -ltype-> (dst)` via Blueprints calls.
fn find_link<G: Blueprints + ?Sized>(g: &G, src: i64, dst: i64, ltype: &str) -> Option<i64> {
    let labels = [ltype.to_string()];
    g.edges_of(src, Direction::Out, &labels)
        .into_iter()
        .find(|&e| g.edge_target(e) == Some(dst))
}

impl<G: Blueprints + ?Sized> LinkOps for G {
    fn apply(&self, op: &Op) -> Result<bool, String> {
        match op {
            Op::AddNode { props } => {
                self.add_vertex(props).map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::UpdateNode { id } => {
                if !self.vertex_exists(*id) {
                    return Ok(false);
                }
                let version = self
                    .vertex_property(*id, "version")
                    .and_then(|v| v.as_i64())
                    .unwrap_or(0);
                self.set_vertex_property(*id, "version", &Json::int(version + 1))
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::DeleteNode { id } => {
                if !self.vertex_exists(*id) {
                    return Ok(false);
                }
                // Racing delete is fine.
                Ok(self.remove_vertex(*id).is_ok())
            }
            Op::GetNode { id } => {
                let _ = self.vertex_property(*id, "data");
                Ok(true)
            }
            Op::AddLink { src, dst, ltype } => {
                if !self.vertex_exists(*src) || !self.vertex_exists(*dst) {
                    return Ok(false);
                }
                let props = vec![
                    ("visibility".to_string(), Json::int(1)),
                    ("timestamp".to_string(), Json::int(1_500_000_000)),
                ];
                Ok(self.add_edge(*src, *dst, ltype, &props).is_ok())
            }
            Op::DeleteLink { src, dst, ltype } => match find_link(self, *src, *dst, ltype) {
                Some(e) => Ok(self.remove_edge(e).is_ok()),
                None => Ok(false),
            },
            Op::UpdateLink { src, dst, ltype } => match find_link(self, *src, *dst, ltype) {
                Some(e) => Ok(self
                    .set_edge_property(e, "timestamp", &Json::int(1_600_000_000))
                    .is_ok()),
                None => Ok(false),
            },
            Op::CountLink { id, ltype } => {
                let _ = self
                    .edges_of(*id, Direction::Out, &[ltype.to_string()])
                    .len();
                Ok(true)
            }
            Op::MultigetLink { src, dsts, ltype } => {
                for dst in dsts {
                    let _ = find_link(self, *src, *dst, ltype);
                }
                Ok(true)
            }
            Op::GetLinkList { id, ltype } => {
                // One call for the edge list, one per edge for attributes —
                // the chatty access pattern of Blueprints stores.
                let edges = self.edges_of(*id, Direction::Out, &[ltype.to_string()]);
                for e in edges {
                    let _ = self.edge_property(e, "timestamp");
                    let _ = self.edge_target(e);
                }
                Ok(true)
            }
        }
    }
}

/// SQLGraph's set-oriented LinkBench driver: one SQL statement per read,
/// stored-procedure transactions per write. `overhead` is charged once per
/// operation — the single client/server round trip.
pub struct SqlLinkOps<'g> {
    /// The store.
    pub graph: &'g SqlGraph,
    /// One round trip per operation.
    pub overhead: std::time::Duration,
}

impl LinkOps for SqlLinkOps<'_> {
    fn apply(&self, op: &Op) -> Result<bool, String> {
        if !self.overhead.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < self.overhead {
                std::hint::spin_loop();
            }
        }
        let db = self.graph.database();
        match op {
            // Writes are the store's transactional procedures.
            Op::AddNode { .. }
            | Op::UpdateNode { .. }
            | Op::DeleteNode { .. }
            | Op::AddLink { .. }
            | Op::UpdateLink { .. }
            | Op::DeleteLink { .. } => {
                // Blueprints impl of SqlGraph already routes through the
                // stored procedures; reuse it for writes.
                let g: &SqlGraph = self.graph;
                <SqlGraph as LinkOps>::apply(g, op)
            }
            // Reads compile to single indexed statements.
            Op::GetNode { id } => {
                db.execute_with_params("SELECT attr FROM va WHERE vid = ?", &[Value::Int(*id)])
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::CountLink { id, ltype } => {
                db.execute_with_params(
                    "SELECT COUNT(*) FROM ea WHERE inv = ? AND lbl = ?",
                    &[Value::Int(*id), Value::str(*ltype)],
                )
                .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::MultigetLink { src, dsts, ltype } => {
                let list = dsts
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                db.execute_with_params(
                    &format!(
                        "SELECT eid, outv FROM ea WHERE inv = ? AND lbl = ? AND outv IN ({list})"
                    ),
                    &[Value::Int(*src), Value::str(*ltype)],
                )
                .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::GetLinkList { id, ltype } => {
                db.execute_with_params(
                    "SELECT eid, outv, attr FROM ea WHERE inv = ? AND lbl = ?",
                    &[Value::Int(*id), Value::str(*ltype)],
                )
                .map_err(|e| e.to_string())?;
                Ok(true)
            }
        }
    }
}

/// Set-oriented LinkBench driver over the hash-partitioned store.
///
/// Every LinkBench read keys on a single node id, and an out-edge's `EA`
/// row lives on its source's shard — so each read routes to exactly one
/// shard's database and runs the same single indexed statement
/// [`SqlLinkOps`] issues. Writes go through the sharded graph procedures
/// (cross-shard links commit two-shard atomically under the shared
/// timestamp oracle).
pub struct ShardedLinkOps<'g> {
    /// The partitioned store.
    pub graph: &'g ShardedGraph,
    /// One round trip per operation.
    pub overhead: std::time::Duration,
}

impl LinkOps for ShardedLinkOps<'_> {
    fn apply(&self, op: &Op) -> Result<bool, String> {
        if !self.overhead.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < self.overhead {
                std::hint::spin_loop();
            }
        }
        match op {
            Op::AddNode { .. }
            | Op::UpdateNode { .. }
            | Op::DeleteNode { .. }
            | Op::AddLink { .. }
            | Op::UpdateLink { .. }
            | Op::DeleteLink { .. } => {
                // Blueprints impl of ShardedGraph routes through the
                // sharded stored procedures; reuse it for writes.
                let g: &ShardedGraph = self.graph;
                <ShardedGraph as LinkOps>::apply(g, op)
            }
            Op::GetNode { id } => {
                self.graph
                    .shard_for(*id)
                    .database()
                    .execute_with_params("SELECT attr FROM va WHERE vid = ?", &[Value::Int(*id)])
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::CountLink { id, ltype } => {
                self.graph
                    .shard_for(*id)
                    .database()
                    .execute_with_params(
                        "SELECT COUNT(*) FROM ea WHERE inv = ? AND lbl = ?",
                        &[Value::Int(*id), Value::str(*ltype)],
                    )
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::MultigetLink { src, dsts, ltype } => {
                let list = dsts
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                self.graph
                    .shard_for(*src)
                    .database()
                    .execute_with_params(
                        &format!(
                            "SELECT eid, outv FROM ea WHERE inv = ? AND lbl = ? AND outv IN ({list})"
                        ),
                        &[Value::Int(*src), Value::str(*ltype)],
                    )
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
            Op::GetLinkList { id, ltype } => {
                self.graph
                    .shard_for(*id)
                    .database()
                    .execute_with_params(
                        "SELECT eid, outv, attr FROM ea WHERE inv = ? AND lbl = ?",
                        &[Value::Int(*id), Value::str(*ltype)],
                    )
                    .map_err(|e| e.to_string())?;
                Ok(true)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mixed read/write drivers: one write script, two transports
// ---------------------------------------------------------------------------

/// One open transaction the mixed write script can drive, independent of
/// transport: the in-process [`GraphTxn`] or a wire-protocol session with
/// an open transaction. Having exactly one script run over both is what
/// lets `remote_parity` assert that `statements_executed` accounting
/// matches between embedded and remote execution.
pub trait MixedTxn {
    /// Run one SQL statement inside the transaction.
    fn sql(&mut self, sql: &str, params: &[Value]) -> Result<Relation, String>;
    /// Run one Gremlin CRUD statement inside the transaction.
    fn gremlin(&mut self, q: &str) -> Result<Relation, String>;
    /// The transaction's cumulative statement counter.
    fn stmts(&self) -> u64;
}

impl MixedTxn for GraphTxn<'_> {
    fn sql(&mut self, sql: &str, params: &[Value]) -> Result<Relation, String> {
        self.sql_with_params(sql, params).map_err(|e| e.to_string())
    }
    fn gremlin(&mut self, q: &str) -> Result<Relation, String> {
        self.query(q).map_err(|e| e.to_string())
    }
    fn stmts(&self) -> u64 {
        self.statements_executed()
    }
}

/// A [`Client`] whose session currently has an explicit transaction open.
pub struct RemoteTxn<'c>(pub &'c mut Client);

impl MixedTxn for RemoteTxn<'_> {
    fn sql(&mut self, sql: &str, params: &[Value]) -> Result<Relation, String> {
        self.0
            .query_sql_with_params(sql, params)
            .map_err(|e| e.to_string())
    }
    fn gremlin(&mut self, q: &str) -> Result<Relation, String> {
        self.0.query_gremlin(q).map_err(|e| e.to_string())
    }
    fn stmts(&self) -> u64 {
        self.0.statements_executed()
    }
}

/// Gremlin literal for a property value.
fn gremlin_lit(j: &Json) -> String {
    match j {
        Json::Num(n) if n.is_int() => n.as_i64().unwrap_or(0).to_string(),
        Json::Num(n) => format!("{:?}", n.as_f64()),
        Json::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
        other => format!("'{other}'"),
    }
}

/// Gremlin map literal for a property list.
fn gremlin_map(props: &[(String, Json)]) -> String {
    props
        .iter()
        .map(|(k, v)| format!("'{k}':{}", gremlin_lit(v)))
        .collect::<Vec<_>>()
        .join(", ")
}

/// `eid` of `(src) -ltype-> (dst)` read inside the transaction.
fn find_link_tx<T: MixedTxn>(
    tx: &mut T,
    src: i64,
    dst: i64,
    ltype: &str,
) -> Result<Option<i64>, String> {
    let rel = tx.sql(
        "SELECT eid FROM ea WHERE inv = ? AND outv = ? AND lbl = ?",
        &[Value::Int(src), Value::Int(dst), Value::str(ltype)],
    )?;
    Ok(rel.rows.first().and_then(|r| r[0].as_int()))
}

/// The mixed benchmark's write script: the op's statements inside an
/// already-open transaction. The caller commits on `Ok(true)` and rolls
/// back on `Ok(false)` / `Err`. Statement-for-statement identical over
/// both transports, so `MixedTxn::stmts` must agree at every step.
pub fn apply_mixed_write<T: MixedTxn>(tx: &mut T, op: &Op) -> Result<bool, String> {
    match op {
        Op::AddNode { props } => {
            tx.gremlin(&format!("g.addVertex([{}])", gremlin_map(props)))?;
            Ok(true)
        }
        Op::UpdateNode { id } => {
            let rel = tx.sql(
                "SELECT JSON_VAL(attr, 'version') FROM va WHERE vid = ?",
                &[Value::Int(*id)],
            )?;
            let Some(row) = rel.rows.first() else {
                return Ok(false);
            };
            let version = row[0].as_int().unwrap_or(0);
            tx.gremlin(&format!(
                "g.v({id}).setProperty('version', {})",
                version + 1
            ))?;
            Ok(true)
        }
        Op::DeleteNode { id } => {
            // Racing delete is fine; the §4.5.2 procedure itself is
            // several statements (edge deletes + negative-ID marks).
            Ok(tx.gremlin(&format!("g.removeVertex({id})")).is_ok())
        }
        Op::AddLink { src, dst, ltype } => {
            let q = format!(
                "g.addEdge({src}, {dst}, '{ltype}', ['visibility':1, 'timestamp':1500000000])"
            );
            Ok(tx.gremlin(&q).is_ok())
        }
        Op::DeleteLink { src, dst, ltype } => match find_link_tx(tx, *src, *dst, ltype)? {
            Some(e) => Ok(tx.gremlin(&format!("g.removeEdge({e})")).is_ok()),
            None => Ok(false),
        },
        Op::UpdateLink { src, dst, ltype } => match find_link_tx(tx, *src, *dst, ltype)? {
            Some(e) => Ok(tx
                .gremlin(&format!("g.e({e}).setProperty('timestamp', 1600000000)"))
                .is_ok()),
            None => Ok(false),
        },
        _ => Err(format!("{} is not a write op", op.name())),
    }
}

/// In-process mixed driver: reads are single SQL statements
/// ([`SqlLinkOps`] behaviour), writes run the shared script inside a
/// [`SqlGraph::transaction`].
pub struct MixedSqlOps<'g> {
    /// The store.
    pub graph: &'g SqlGraph,
}

impl LinkOps for MixedSqlOps<'_> {
    fn apply(&self, op: &Op) -> Result<bool, String> {
        if !op.is_write() {
            return SqlLinkOps {
                graph: self.graph,
                overhead: std::time::Duration::ZERO,
            }
            .apply(op);
        }
        let mut tx = self.graph.transaction();
        match apply_mixed_write(&mut tx, op) {
            Ok(true) => {
                tx.commit().map_err(|e| e.to_string())?;
                Ok(true)
            }
            Ok(false) => {
                tx.rollback();
                Ok(false)
            }
            Err(e) => {
                tx.rollback();
                Err(e)
            }
        }
    }
}

/// Remote mixed driver: the same operations through a wire-protocol
/// session — real socket round trips instead of the simulated
/// `thread::sleep` ones this replaced. One instance per client thread
/// (a [`Client`] is one connection).
pub struct RemoteMixedOps {
    /// The connection; `pub` so harnesses can reuse it for setup.
    pub client: Client,
}

impl RemoteMixedOps {
    /// Connect a fresh session to a running server.
    pub fn connect(addr: std::net::SocketAddr) -> Result<RemoteMixedOps, String> {
        Ok(RemoteMixedOps {
            client: Client::connect(addr).map_err(|e| e.to_string())?,
        })
    }

    /// Apply one LinkBench operation over the wire.
    pub fn apply(&mut self, op: &Op) -> Result<bool, String> {
        if !op.is_write() {
            return self.apply_read(op);
        }
        self.client.begin().map_err(|e| e.to_string())?;
        let outcome = apply_mixed_write(&mut RemoteTxn(&mut self.client), op);
        match outcome {
            Ok(true) => {
                self.client.commit().map_err(|e| e.to_string())?;
                Ok(true)
            }
            Ok(false) => {
                let _ = self.client.rollback();
                Ok(false)
            }
            Err(e) => {
                // The server may have already aborted the transaction
                // (conflict); a failed rollback of a closed transaction
                // is fine.
                if self.client.in_transaction() {
                    let _ = self.client.rollback();
                }
                Err(e)
            }
        }
    }

    /// Reads: the same single indexed statements [`SqlLinkOps`] issues,
    /// as one wire round trip each.
    fn apply_read(&mut self, op: &Op) -> Result<bool, String> {
        let c = &mut self.client;
        let run = |c: &mut Client, sql: &str, params: &[Value]| {
            c.query_sql_with_params(sql, params)
                .map_err(|e| e.to_string())
        };
        match op {
            Op::GetNode { id } => {
                run(c, "SELECT attr FROM va WHERE vid = ?", &[Value::Int(*id)])?;
                Ok(true)
            }
            Op::CountLink { id, ltype } => {
                run(
                    c,
                    "SELECT COUNT(*) FROM ea WHERE inv = ? AND lbl = ?",
                    &[Value::Int(*id), Value::str(*ltype)],
                )?;
                Ok(true)
            }
            Op::MultigetLink { src, dsts, ltype } => {
                let list = dsts
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                run(
                    c,
                    &format!(
                        "SELECT eid, outv FROM ea WHERE inv = ? AND lbl = ? AND outv IN ({list})"
                    ),
                    &[Value::Int(*src), Value::str(*ltype)],
                )?;
                Ok(true)
            }
            Op::GetLinkList { id, ltype } => {
                run(
                    c,
                    "SELECT eid, outv, attr FROM ea WHERE inv = ? AND lbl = ?",
                    &[Value::Int(*id), Value::str(*ltype)],
                )?;
                Ok(true)
            }
            other => Err(format!("{} is not a read op", other.name())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgraph_baselines::NativeGraph;
    use sqlgraph_datagen::linkbench::{generate, LinkBenchConfig, Workload};

    #[test]
    fn drivers_agree_on_a_small_run() {
        let config = LinkBenchConfig {
            nodes: 60,
            ..LinkBenchConfig::default()
        };
        let data = generate(&config);

        let sql = SqlGraph::new_in_memory();
        data.load_blueprints(&sql).unwrap();
        let native = NativeGraph::new();
        data.load_blueprints(&native).unwrap();

        let sql_ops = SqlLinkOps {
            graph: &sql,
            overhead: std::time::Duration::ZERO,
        };
        let mut wl = Workload::new(11, 0, config.nodes, 8);
        for _ in 0..300 {
            let op = wl.next_op();
            let a = sql_ops.apply(&op).unwrap();
            let b = LinkOps::apply(&native, &op).unwrap();
            // Write effectiveness must agree so the stores stay in sync.
            if op.is_write() {
                assert_eq!(a, b, "write disagreement on {op:?}");
            }
        }
        // Final edge counts agree.
        assert_eq!(sql.database().table_len("ea").unwrap(), native.edge_count());
    }
}
