//! # sqlgraph-bench — the reproduction harness
//!
//! Regenerates every table and figure of the SQLGraph paper's evaluation:
//!
//! | artifact | function |
//! |---|---|
//! | Table 1 / Figure 3 | [`experiments::fig3`] |
//! | Table 2 / Figure 4 | [`experiments::fig4`] |
//! | Table 3 | [`experiments::table3`] |
//! | Table 4 | [`experiments::table4`] |
//! | Figure 6 | [`experiments::fig6`] |
//! | Figures 8a/8b/8d | [`experiments::fig8`] |
//! | Figure 8c (substituted) | [`experiments::fig8c`] |
//! | Figure 9 | [`experiments::fig9`] |
//! | Tables 6/7 | [`experiments::table67`] |
//! | §5.1 sizes | [`experiments::sizes`] |
//! | Recovery time (durability) | [`experiments::recovery`] |
//!
//! Run them all with `cargo run --release -p sqlgraph-bench --bin repro -- all`.

pub mod experiments;
pub mod linkops;
pub mod setup;
pub mod timing;
