//! Remote/in-process parity: the mixed benchmark's write script must
//! behave *identically* whether it runs over an embedded [`GraphTxn`] or
//! a wire-protocol session — same effectiveness per op, same
//! `statements_executed` accounting at every step, same final store
//! contents. This is the regression net for the `throughput-mixed`
//! driver: if remote execution ever charges a different number of
//! statements (or silently diverges in effect), the benchmark would be
//! comparing different workloads, not different transports.

use sqlgraph_bench::linkops::{apply_mixed_write, MixedTxn, RemoteTxn};
use sqlgraph_core::SqlGraph;
use sqlgraph_datagen::linkbench::{generate, LinkBenchConfig, Workload};
use sqlgraph_server::{Client, Server};
use std::sync::Arc;

fn canon_rows(rel: &sqlgraph_rel::Relation) -> Vec<String> {
    let mut rows: Vec<String> = rel.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

/// Full canonical dump of both attribute tables.
fn dump(graph: &SqlGraph) -> (Vec<String>, Vec<String>) {
    let va = graph
        .database()
        .execute("SELECT vid, attr FROM va")
        .unwrap();
    let ea = graph
        .database()
        .execute("SELECT eid, inv, outv, lbl, attr FROM ea")
        .unwrap();
    (canon_rows(&va), canon_rows(&ea))
}

#[test]
fn statement_accounting_matches_across_transports() {
    let config = LinkBenchConfig {
        nodes: 60,
        ..LinkBenchConfig::default()
    };
    let data = generate(&config);

    // Two identical stores: `local` driven embedded, `remote` through a
    // live wire-protocol server.
    let local = SqlGraph::new_in_memory();
    data.load_blueprints(&local).unwrap();
    let remote = Arc::new(SqlGraph::new_in_memory());
    data.load_blueprints(remote.as_ref()).unwrap();
    let server = Server::start_local(Arc::clone(&remote)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // The same deterministic write stream against both. Replaying one op
    // at a time keeps the stores lock-step, so any divergence points at
    // the transport, not at racing workloads.
    let mut wl = Workload::new(41, 7, config.nodes, 8);
    let mut writes = 0u32;
    let mut effective = 0u32;
    while writes < 150 {
        let op = wl.next_op_mixed(1000);
        if !op.is_write() {
            continue;
        }
        writes += 1;

        let (local_ok, local_stmts) = {
            let mut tx = local.transaction();
            let outcome = apply_mixed_write(&mut tx, &op);
            let stmts = tx.stmts();
            match outcome {
                Ok(true) => {
                    tx.commit().unwrap();
                    (Ok(true), stmts)
                }
                Ok(false) => {
                    tx.rollback();
                    (Ok(false), stmts)
                }
                Err(e) => {
                    tx.rollback();
                    (Err(e), stmts)
                }
            }
        };

        let (remote_ok, remote_stmts) = {
            client.begin().unwrap();
            let mut tx = RemoteTxn(&mut client);
            let outcome = apply_mixed_write(&mut tx, &op);
            let stmts = tx.stmts();
            match outcome {
                Ok(true) => {
                    client.commit().unwrap();
                    (Ok(true), stmts)
                }
                Ok(false) => {
                    client.rollback().unwrap();
                    (Ok(false), stmts)
                }
                Err(e) => {
                    if client.in_transaction() {
                        let _ = client.rollback();
                    }
                    (Err(e), stmts)
                }
            }
        };

        assert_eq!(
            local_ok.is_ok(),
            remote_ok.is_ok(),
            "outcome kind diverged on {op:?}: local {local_ok:?}, remote {remote_ok:?}"
        );
        if let (Ok(a), Ok(b)) = (&local_ok, &remote_ok) {
            assert_eq!(a, b, "write effectiveness diverged on {op:?}");
            if *a {
                effective += 1;
            }
        }
        assert_eq!(
            local_stmts, remote_stmts,
            "statements_executed diverged on {op:?} (after {writes} writes): \
             local charged {local_stmts}, remote charged {remote_stmts}"
        );
    }
    assert!(effective > 20, "workload too inert to prove anything");

    // After 150 lock-step write transactions, the stores must be
    // byte-identical row for row.
    drop(client);
    server.shutdown();
    assert_eq!(dump(&local), dump(&remote), "final store contents diverged");
}

#[test]
fn remote_reads_return_the_same_relations() {
    let config = LinkBenchConfig {
        nodes: 60,
        ..LinkBenchConfig::default()
    };
    let data = generate(&config);
    let graph = Arc::new(SqlGraph::new_in_memory());
    data.load_blueprints(graph.as_ref()).unwrap();
    let server = Server::start_local(Arc::clone(&graph)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // The read statements the benchmark drivers issue, spot-checked over
    // both transports for every node id.
    for vid in 1..=60i64 {
        for (sql, params) in [
            (
                "SELECT attr FROM va WHERE vid = ?",
                vec![sqlgraph_rel::Value::Int(vid)],
            ),
            (
                "SELECT COUNT(*) FROM ea WHERE inv = ? AND lbl = ?",
                vec![
                    sqlgraph_rel::Value::Int(vid),
                    sqlgraph_rel::Value::str("l0"),
                ],
            ),
            (
                "SELECT eid, outv, attr FROM ea WHERE inv = ? AND lbl = ?",
                vec![
                    sqlgraph_rel::Value::Int(vid),
                    sqlgraph_rel::Value::str("l1"),
                ],
            ),
        ] {
            let embedded = graph.database().execute_with_params(sql, &params).unwrap();
            let wire = client.query_sql_with_params(sql, &params).unwrap();
            assert_eq!(
                canon_rows(&embedded),
                canon_rows(&wire),
                "diverged on {sql}"
            );
            assert_eq!(embedded.columns, wire.columns, "columns diverged on {sql}");
        }
    }
    server.shutdown();
}
