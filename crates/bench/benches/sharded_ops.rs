//! Criterion bench: LinkBench point reads against the hash-partitioned
//! store, next to the unsharded store on the same dataset.
//!
//! Like the other benches this doubles as a correctness gate under
//! `SQLGRAPH_BENCH_SMOKE`: before any timing, every sampled read is
//! asserted to return the same result from the 4-shard store as from the
//! unsharded one, at a dataset size the unit-test corpora never reach.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlgraph_bench::linkops::{LinkOps, ShardedLinkOps, SqlLinkOps};
use sqlgraph_bench::setup::{build_sharded, build_sqlgraph};
use sqlgraph_datagen::linkbench::{generate, LinkBenchConfig, Op, Workload};

fn bench_sharded(c: &mut Criterion) {
    let nodes = 2_000;
    let data = generate(&LinkBenchConfig::with_nodes(nodes));
    let sql = build_sqlgraph(&data);
    let sql_ops = SqlLinkOps {
        graph: &sql,
        overhead: std::time::Duration::ZERO,
    };
    let sharded = build_sharded(&data, 4);
    let sharded_ops = ShardedLinkOps {
        graph: &sharded,
        overhead: std::time::Duration::ZERO,
    };

    // Correctness gate: a read-only workload sample must agree between
    // the sharded and unsharded stores, result for result.
    let mut wl = Workload::new(7, 0, nodes, 0);
    let mut checked = 0;
    while checked < 500 {
        let op = wl.next_op_mixed(0);
        let want = sql_ops.apply(&op).unwrap();
        let got = sharded_ops.apply(&op).unwrap();
        assert_eq!(want, got, "sharded read diverged on {op:?}");
        checked += 1;
    }

    let get_node = Op::GetNode { id: 5 };
    let get_links = Op::GetLinkList {
        id: 3,
        ltype: "assoc_0",
    };
    let count_links = Op::CountLink {
        id: 3,
        ltype: "assoc_0",
    };

    let mut group = c.benchmark_group("sharded_ops");
    group.sample_size(30);
    group.bench_function("sharded4_get_node", |b| {
        b.iter(|| sharded_ops.apply(&get_node).unwrap())
    });
    group.bench_function("unsharded_get_node", |b| {
        b.iter(|| sql_ops.apply(&get_node).unwrap())
    });
    group.bench_function("sharded4_get_link_list", |b| {
        b.iter(|| sharded_ops.apply(&get_links).unwrap())
    });
    group.bench_function("unsharded_get_link_list", |b| {
        b.iter(|| sql_ops.apply(&get_links).unwrap())
    });
    group.bench_function("sharded4_count_link", |b| {
        b.iter(|| sharded_ops.apply(&count_links).unwrap())
    });
    group.bench_function("unsharded_count_link", |b| {
        b.iter(|| sql_ops.apply(&count_links).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
