//! Criterion bench: Figure 3 — hash-shredded vs JSON-document adjacency,
//! plus the CSR + factorized access path over the same hash tables.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlgraph_bench::setup::{build_sqlgraph, to_graph_data};
use sqlgraph_core::alt::JsonAdjacency;
use sqlgraph_core::{AdjacencyStrategy, TranslateOptions};
use sqlgraph_datagen::dbpedia::{generate, DbpediaConfig};

fn bench_adjacency(c: &mut Criterion) {
    let g = generate(&DbpediaConfig::default().scaled(0.25));
    let sql = build_sqlgraph(&g.data);
    let ja = JsonAdjacency::new().unwrap();
    ja.load(&to_graph_data(&g.data)).unwrap();
    let force_hash = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceHash,
        factorize: false,
    };
    let places = g.config.places;

    let mut group = c.benchmark_group("fig3_adjacency");
    group.sample_size(10);
    for hops in [3usize, 6, 9] {
        let mut q = String::from("g.V.interval('bucket', 0, 1000000)");
        for _ in 0..hops {
            q.push_str(".out('isPartOf')");
        }
        q.push_str(".count()");
        group.bench_function(format!("hash_{hops}hop"), |b| {
            b.iter(|| sql.query_with(&q, force_hash).unwrap())
        });
        // Correctness gate for the smoke run: the CSR + factorized path
        // must agree with the row templates before it is timed.
        let want = sql.query_with(&q, force_hash).unwrap().rows;
        let got = sql.query(&q).unwrap().rows;
        assert_eq!(got, want, "csr/factorized arm diverged at {hops} hops");
        group.bench_function(format!("csr_{hops}hop"), |b| {
            b.iter(|| sql.query(&q).unwrap())
        });
        let seed = format!("JSON_VAL(attr, 'bucket') < {places}");
        group.bench_function(format!("json_{hops}hop"), |b| {
            b.iter(|| ja.khop(&seed, Some("isPartOf"), hops).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adjacency);
criterion_main!(benches);
