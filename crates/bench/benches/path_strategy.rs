//! Criterion bench: Figure 6 — OPA+OSA joins vs EA self-joins on long paths.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlgraph_bench::setup::build_sqlgraph;
use sqlgraph_core::{AdjacencyStrategy, TranslateOptions};
use sqlgraph_datagen::dbpedia::{generate, DbpediaConfig};

fn bench_path_strategy(c: &mut Criterion) {
    let g = generate(&DbpediaConfig::default().scaled(0.25));
    let sql = build_sqlgraph(&g.data);
    let hash = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceHash,
        factorize: false,
    };
    let ea = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceEa,
        factorize: false,
    };

    let mut group = c.benchmark_group("fig6_path_strategy");
    group.sample_size(10);
    for hops in [3usize, 6] {
        let mut q = String::from("g.V.interval('bucket', 0, 1000000)");
        for _ in 0..hops {
            q.push_str(".out('isPartOf')");
        }
        q.push_str(".count()");
        group.bench_function(format!("opa_osa_{hops}hop"), |b| {
            b.iter(|| sql.query_with(&q, hash).unwrap())
        });
        group.bench_function(format!("ea_{hops}hop"), |b| {
            b.iter(|| sql.query_with(&q, ea).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_path_strategy);
criterion_main!(benches);
