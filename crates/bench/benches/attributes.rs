//! Criterion bench: Figure 4 — JSON vs shredded attribute lookups.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlgraph_bench::setup::build_sqlgraph;
use sqlgraph_core::alt::ShreddedAttrs;
use sqlgraph_datagen::dbpedia::{generate, DbpediaConfig};

fn bench_attributes(c: &mut Criterion) {
    let g = generate(&DbpediaConfig::default().scaled(0.25));
    let sql = build_sqlgraph(&g.data);
    let shredded = ShreddedAttrs::build(&g.data.vertices, 8).unwrap();

    let mut group = c.benchmark_group("fig4_attributes");
    group.sample_size(20);
    group.bench_function("json_not_null", |b| {
        b.iter(|| {
            sql.database()
                .execute("SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, 'label') IS NOT NULL")
                .unwrap()
        })
    });
    let shred_nn = shredded.count_not_null_sql("label");
    group.bench_function("shredded_not_null", |b| {
        b.iter(|| shredded.run(&shred_nn).unwrap())
    });
    group.bench_function("json_like", |b| {
        b.iter(|| {
            sql.database()
                .execute("SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, 'label') LIKE '%@en'")
                .unwrap()
        })
    });
    let shred_like = shredded.count_like_sql("label", "%@en");
    group.bench_function("shredded_like", |b| {
        b.iter(|| shredded.run(&shred_like).unwrap())
    });
    group.bench_function("json_numeric_eq", |b| {
        b.iter(|| {
            sql.database()
                .execute("SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, 'longm') = 1.0")
                .unwrap()
        })
    });
    let shred_num = shredded.count_numeric_eq_sql("longm", 1.0);
    group.bench_function("shredded_numeric_eq", |b| {
        b.iter(|| shredded.run(&shred_num).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_attributes);
criterion_main!(benches);
