//! Criterion bench: Tables 6/7 — per-operation LinkBench latency.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlgraph_bench::linkops::{LinkOps, SqlLinkOps};
use sqlgraph_bench::setup::{build_nativegraph, build_sqlgraph};
use sqlgraph_datagen::linkbench::{generate, LinkBenchConfig, Op};

fn bench_linkbench(c: &mut Criterion) {
    let nodes = 2_000;
    let data = generate(&LinkBenchConfig::with_nodes(nodes));
    let sql = build_sqlgraph(&data);
    let sql_ops = SqlLinkOps {
        graph: &sql,
        overhead: std::time::Duration::ZERO,
    };
    let native = build_nativegraph(&data);

    let get_node = Op::GetNode { id: 5 };
    let get_links = Op::GetLinkList {
        id: 3,
        ltype: "assoc_0",
    };
    let count_links = Op::CountLink {
        id: 3,
        ltype: "assoc_0",
    };

    let mut group = c.benchmark_group("linkbench_ops");
    group.sample_size(30);
    group.bench_function("sqlgraph_get_node", |b| {
        b.iter(|| sql_ops.apply(&get_node).unwrap())
    });
    group.bench_function("neo4j_like_get_node", |b| {
        b.iter(|| LinkOps::apply(&native, &get_node).unwrap())
    });
    group.bench_function("sqlgraph_get_link_list", |b| {
        b.iter(|| sql_ops.apply(&get_links).unwrap())
    });
    group.bench_function("neo4j_like_get_link_list", |b| {
        b.iter(|| LinkOps::apply(&native, &get_links).unwrap())
    });
    group.bench_function("sqlgraph_count_link", |b| {
        b.iter(|| sql_ops.apply(&count_links).unwrap())
    });
    group.bench_function("neo4j_like_count_link", |b| {
        b.iter(|| LinkOps::apply(&native, &count_links).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_linkbench);
criterion_main!(benches);
