//! Criterion bench: morsel-driven intra-query parallelism. A large
//! scan-and-aggregate and a join-heavy query run serial (DOP pinned to 1)
//! and parallel (DOP 4); on a multi-core host the parallel side should win
//! by roughly the core count (the acceptance target is ≥2× at DOP 4).

use criterion::{criterion_group, criterion_main, Criterion};
use sqlgraph_rel::{Database, Value};

const FACT_ROWS: i64 = 120_000;
const DIM_ROWS: i64 = 600;

fn build_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE fact (id INTEGER PRIMARY KEY, k INTEGER, v DOUBLE)")
        .unwrap();
    db.execute("CREATE TABLE dim (k INTEGER PRIMARY KEY, tag INTEGER)")
        .unwrap();
    for i in 0..FACT_ROWS {
        db.execute_with_params(
            "INSERT INTO fact VALUES (?, ?, ?)",
            &[
                Value::Int(i),
                Value::Int((i * 17) % DIM_ROWS),
                Value::Double(i as f64 * 0.003),
            ],
        )
        .unwrap();
    }
    for k in 0..DIM_ROWS {
        db.execute_with_params(
            "INSERT INTO dim VALUES (?, ?)",
            &[Value::Int(k), Value::Int(k % 3)],
        )
        .unwrap();
    }
    db.execute("ANALYZE").unwrap();
    db
}

// A predicate-heavy scan + grouped aggregation over the whole fact table.
const SCAN_AGG: &str = "SELECT fact.k, COUNT(*), SUM(fact.v) FROM fact \
                        WHERE fact.v > 1.0 AND fact.id % 3 = 0 GROUP BY fact.k";
// A hash join with no usable index: build over dim, probe over fact.
const JOIN: &str = "SELECT COUNT(*) FROM fact, dim \
                    WHERE fact.k = dim.k AND dim.tag = 1 AND fact.v > 10.0";

fn bench_parallel_exec(c: &mut Criterion) {
    let db = build_db();

    // Every mode must agree row-for-row before anything is timed: serial
    // vs DOP 4, and the columnar batch engine vs row-at-a-time execution.
    // At 120k rows this exercises scales the unit-test corpora never reach.
    for query in [SCAN_AGG, JOIN] {
        db.set_parallelism(1);
        let serial = db.execute(query).unwrap();
        db.set_parallelism(4);
        let parallel = db.execute(query).unwrap();
        assert_eq!(
            serial.rows, parallel.rows,
            "parallelism changed the answer: {query}"
        );
        db.set_parallelism(1);
        db.set_batch_enabled(false);
        let row_engine = db.execute(query).unwrap();
        db.set_batch_enabled(true);
        assert_eq!(
            serial.rows, row_engine.rows,
            "batch engine changed the answer: {query}"
        );
    }

    let mut group = c.benchmark_group("parallel_exec");
    group.sample_size(15);
    for (name, query) in [("scan_agg", SCAN_AGG), ("hash_join", JOIN)] {
        db.set_parallelism(1);
        group.bench_function(format!("{name}/serial"), |b| {
            b.iter(|| db.execute(query).unwrap())
        });
        db.set_parallelism(4);
        group.bench_function(format!("{name}/dop4"), |b| {
            b.iter(|| db.execute(query).unwrap())
        });
        // Row-at-a-time reference point for the columnar batch engine.
        db.set_parallelism(1);
        db.set_batch_enabled(false);
        group.bench_function(format!("{name}/row_serial"), |b| {
            b.iter(|| db.execute(query).unwrap())
        });
        db.set_batch_enabled(true);
    }
    group.finish();
    db.set_parallelism(0);
}

criterion_group!(benches, bench_parallel_exec);
criterion_main!(benches);
