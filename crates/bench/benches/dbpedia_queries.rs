//! Criterion bench: Figure 8 — the three systems on DBpedia benchmark queries.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlgraph_bench::setup::{build_kvgraph, build_nativegraph, build_sqlgraph};
use sqlgraph_datagen::dbpedia::{benchmark_queries, generate, DbpediaConfig};
use sqlgraph_gremlin::{interp, parse_query};

fn bench_dbpedia(c: &mut Criterion) {
    let g = generate(&DbpediaConfig::default().scaled(0.25));
    let sql = build_sqlgraph(&g.data);
    let kv = build_kvgraph(&g.data);
    let native = build_nativegraph(&g.data);
    let queries = benchmark_queries(&g);
    // A representative subset: selective lookup (dq2), traversal (dq4),
    // scan-heavy (dq15).
    let picks = [1usize, 3, 14];

    let mut group = c.benchmark_group("fig8_dbpedia");
    group.sample_size(10);
    for &i in &picks {
        let q = &queries[i];
        let pipeline = parse_query(q).unwrap();
        group.bench_function(format!("sqlgraph_dq{}", i + 1), |b| {
            b.iter(|| sql.query(q).unwrap())
        });
        group.bench_function(format!("titan_like_dq{}", i + 1), |b| {
            b.iter(|| interp::eval(&kv, &pipeline).unwrap())
        });
        group.bench_function(format!("neo4j_like_dq{}", i + 1), |b| {
            b.iter(|| interp::eval(&native, &pipeline).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dbpedia);
criterion_main!(benches);
