//! Criterion bench: cost-based join ordering. An adversarially-written
//! multi-join lists the large fact table first and the tiny filtered
//! dimension tables last; the planner must flip the order (dimensions
//! first, fact attached by index nested-loop) to win.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlgraph_rel::{Database, Value};

const FACT_ROWS: i64 = 20_000;
const DIM_ROWS: i64 = 1_000;

fn build_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE fact (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE dim_a (a INTEGER PRIMARY KEY, tag INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE dim_b (b INTEGER PRIMARY KEY, tag INTEGER)")
        .unwrap();
    for i in 0..FACT_ROWS {
        db.execute_with_params(
            "INSERT INTO fact VALUES (?, ?, ?)",
            &[
                Value::Int(i),
                Value::Int((i * 13) % DIM_ROWS),
                Value::Int((i * 7) % DIM_ROWS),
            ],
        )
        .unwrap();
    }
    for k in 0..DIM_ROWS {
        let tag = Value::Int(i64::from(k < 10));
        db.execute_with_params(
            "INSERT INTO dim_a VALUES (?, ?)",
            &[Value::Int(k), tag.clone()],
        )
        .unwrap();
        db.execute_with_params("INSERT INTO dim_b VALUES (?, ?)", &[Value::Int(k), tag])
            .unwrap();
    }
    db.execute("CREATE INDEX fact_a ON fact (a)").unwrap();
    db.execute("CREATE INDEX fact_b ON fact (b)").unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

// Textual order is the worst case: the fact table leads, both selective
// dimension filters trail.
const QUERY: &str = "SELECT COUNT(*) FROM fact f, dim_a da, dim_b db \
                     WHERE f.a = da.a AND f.b = db.b AND da.tag = 1 AND db.tag = 1";

fn bench_join_order(c: &mut Criterion) {
    let db = build_db();

    // Both executions must agree before timing anything.
    db.set_planner_enabled(false);
    let naive = db.execute(QUERY).unwrap();
    db.set_planner_enabled(true);
    let planned = db.execute(QUERY).unwrap();
    assert_eq!(naive.rows, planned.rows, "planner changed the answer");

    let mut group = c.benchmark_group("join_order");
    group.sample_size(20);
    db.set_planner_enabled(false);
    group.bench_function("naive_textual_order", |b| {
        b.iter(|| db.execute(QUERY).unwrap())
    });
    db.set_planner_enabled(true);
    group.bench_function("cost_based_order", |b| {
        b.iter(|| db.execute(QUERY).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_join_order);
criterion_main!(benches);
