//! Blueprints conformance: both baseline stores must agree with the
//! MemGraph oracle on a query corpus and under randomized update sequences.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlgraph_baselines::{KvGraph, NativeGraph, RemoteGraph};
use sqlgraph_gremlin::{interp, parse_query, Blueprints, Elem, MemGraph};
use sqlgraph_json::Json;
use std::time::Duration;

const CORPUS: &[&str] = &[
    "g.V.count()",
    "g.E.count()",
    "g.v(1).out",
    "g.v(1).out('knows')",
    "g.v(3).in",
    "g.v(4).both",
    "g.v(1).outE('knows').inV",
    "g.e(4).bothV",
    "g.V.has('age', T.gt, 28)",
    "g.V.has('name', 'lop')",
    "g.V('name','lop')",
    "g.V.filter{it.age > 27 && it.age < 33}",
    "g.V.out.dedup()",
    "g.v(1).out('knows').values('name')",
    "g.v(1).out.out.path",
    "g.V.as('x').out('created').back('x')",
    "g.v(1).aggregate(x).out.out.except(x)",
    "g.V.and(_().out('knows'), _().out('created'))",
    "g.v(1).copySplit(_().out('knows'), _().out('created')).fairMerge",
    "g.v(1).out.loop(1){it.loops < 2}",
    "g.E.has('weight', T.gte, 0.8)",
];

fn build_sample<G: Blueprints>(g: &G) {
    let p = |pairs: &[(&str, Json)]| -> Vec<(String, Json)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    };
    let v1 = g
        .add_vertex(&p(&[("name", "marko".into()), ("age", Json::int(29))]))
        .unwrap();
    let v2 = g
        .add_vertex(&p(&[("name", "vadas".into()), ("age", Json::int(27))]))
        .unwrap();
    let v3 = g
        .add_vertex(&p(&[("name", "lop".into()), ("lang", "java".into())]))
        .unwrap();
    let v4 = g
        .add_vertex(&p(&[("name", "josh".into()), ("age", Json::int(32))]))
        .unwrap();
    assert_eq!((v1, v2, v3, v4), (1, 2, 3, 4));
    g.add_edge(v1, v2, "knows", &p(&[("weight", Json::float(0.5))]))
        .unwrap();
    g.add_edge(v1, v4, "knows", &p(&[("weight", Json::float(1.0))]))
        .unwrap();
    g.add_edge(v1, v3, "created", &p(&[("weight", Json::float(0.4))]))
        .unwrap();
    g.add_edge(v4, v2, "likes", &p(&[("weight", Json::float(0.2))]))
        .unwrap();
    g.add_edge(v4, v3, "created", &p(&[("weight", Json::float(0.8))]))
        .unwrap();
}

fn canon(elems: Vec<Elem>) -> Vec<String> {
    let mut out: Vec<String> = elems.iter().map(|e| format!("{:?}", e.to_json())).collect();
    out.sort();
    out
}

fn check_store<G: Blueprints>(store: &G, name: &str) {
    let oracle = MemGraph::new();
    build_sample(&oracle);
    build_sample(store);
    for query in CORPUS {
        let pipeline = parse_query(query).unwrap();
        let want = canon(interp::eval(&oracle, &pipeline).unwrap());
        let got = canon(interp::eval(store, &pipeline).unwrap());
        assert_eq!(got, want, "{name} diverged on {query}");
    }
}

#[test]
fn kvgraph_matches_oracle() {
    check_store(&KvGraph::new(), "KvGraph");
}

#[test]
fn nativegraph_matches_oracle() {
    check_store(&NativeGraph::new(), "NativeGraph");
}

#[test]
fn remote_wrapper_is_transparent_and_counts() {
    let remote = RemoteGraph::new(KvGraph::new(), Duration::ZERO);
    check_store(&remote, "RemoteGraph<KvGraph>");
    assert!(remote.call_count() > 50, "per-step calls should accumulate");
}

fn random_updates<G: Blueprints>(store: &G, oracle: &MemGraph, seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vertices: Vec<i64> = Vec::new();
    let mut edges: Vec<i64> = Vec::new();
    for _ in 0..steps {
        match rng.gen_range(0..10) {
            0..=2 => {
                let props = vec![
                    (
                        "name".to_string(),
                        Json::str(["a", "b", "c"][rng.gen_range(0..3usize)]),
                    ),
                    ("age".to_string(), Json::int(rng.gen_range(1..90))),
                ];
                let a = store.add_vertex(&props).unwrap();
                let b = oracle.add_vertex(&props).unwrap();
                assert_eq!(a, b, "vertex id allocation diverged");
                vertices.push(a);
            }
            3..=6 => {
                if vertices.len() < 2 {
                    continue;
                }
                let src = vertices[rng.gen_range(0..vertices.len())];
                let dst = vertices[rng.gen_range(0..vertices.len())];
                let label = ["knows", "likes"][rng.gen_range(0..2usize)];
                let a = store.add_edge(src, dst, label, &[]).unwrap();
                let b = oracle.add_edge(src, dst, label, &[]).unwrap();
                assert_eq!(a, b, "edge id allocation diverged");
                edges.push(a);
            }
            7 => {
                if let Some(pos) = (!edges.is_empty()).then(|| rng.gen_range(0..edges.len())) {
                    let e = edges.swap_remove(pos);
                    store.remove_edge(e).unwrap();
                    oracle.remove_edge(e).unwrap();
                }
            }
            8 => {
                if let Some(pos) = (!vertices.is_empty()).then(|| rng.gen_range(0..vertices.len()))
                {
                    let v = vertices.swap_remove(pos);
                    store.remove_vertex(v).unwrap();
                    oracle.remove_vertex(v).unwrap();
                    edges.retain(|&e| oracle.edge_exists(e));
                }
            }
            _ => {
                if let Some(&v) = vertices.first() {
                    let val = Json::int(rng.gen_range(1..90));
                    store.set_vertex_property(v, "age", &val).unwrap();
                    oracle.set_vertex_property(v, "age", &val).unwrap();
                }
            }
        }
    }
    // Full-state comparison.
    let mut want_v = oracle.vertex_ids();
    let mut got_v = store.vertex_ids();
    want_v.sort_unstable();
    got_v.sort_unstable();
    assert_eq!(got_v, want_v);
    let mut want_e = oracle.edge_ids();
    let mut got_e = store.edge_ids();
    want_e.sort_unstable();
    got_e.sort_unstable();
    assert_eq!(got_e, want_e);
    for &v in &want_v {
        for dir in [
            sqlgraph_gremlin::Direction::Out,
            sqlgraph_gremlin::Direction::In,
        ] {
            let mut a = store.edges_of(v, dir, &[]);
            let mut b = oracle.edges_of(v, dir, &[]);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "adjacency diverged at vertex {v}");
        }
        assert_eq!(
            store.vertex_property(v, "age"),
            oracle.vertex_property(v, "age"),
            "property diverged at vertex {v}"
        );
    }
}

#[test]
fn kvgraph_random_updates_match() {
    for seed in 0..3 {
        random_updates(&KvGraph::new(), &MemGraph::new(), seed, 150);
    }
}

#[test]
fn nativegraph_random_updates_match() {
    for seed in 0..3 {
        random_updates(&NativeGraph::new(), &MemGraph::new(), seed, 150);
    }
}

#[test]
fn property_index_stays_consistent() {
    let g = NativeGraph::new();
    let v = g.add_vertex(&[("name".into(), Json::str("x"))]).unwrap();
    assert_eq!(g.vertices_by_property("name", &Json::str("x")), [v]);
    g.set_vertex_property(v, "name", &Json::str("y")).unwrap();
    assert!(g.vertices_by_property("name", &Json::str("x")).is_empty());
    assert_eq!(g.vertices_by_property("name", &Json::str("y")), [v]);
    g.remove_vertex(v).unwrap();
    assert!(g.vertices_by_property("name", &Json::str("y")).is_empty());

    let g = KvGraph::new();
    let v = g.add_vertex(&[("name".into(), Json::str("x"))]).unwrap();
    assert_eq!(g.vertices_by_property("name", &Json::str("x")), [v]);
    g.set_vertex_property(v, "name", &Json::str("y")).unwrap();
    assert!(g.vertices_by_property("name", &Json::str("x")).is_empty());
    assert_eq!(g.vertices_by_property("name", &Json::str("y")), [v]);
    g.remove_vertex(v).unwrap();
    assert!(g.vertices_by_property("name", &Json::str("y")).is_empty());
}
