//! # sqlgraph-baselines — comparator property graph stores
//!
//! The two systems the SQLGraph paper evaluates against, rebuilt with their
//! essential storage and concurrency characteristics:
//!
//! * [`KvGraph`] — Titan on BerkeleyDB: graph laid out in an ordered
//!   key-value store ([`kv::KvStore`]); adjacency in key ranges, properties
//!   in record payloads, a composite property index, and a store-wide
//!   single-writer lock.
//! * [`NativeGraph`] — Neo4j: record-based native storage with linked edge
//!   chains, pointer-chasing traversal, and a coarse reader/writer lock.
//!
//! Both implement [`sqlgraph_gremlin::Blueprints`] and are queried
//! step-at-a-time by the Gremlin interpreter — the per-element,
//! call-per-step model the paper's single-SQL translation eliminates.
//! [`RemoteGraph`] optionally charges a per-call latency to model the
//! client/server deployment (Rexster / Neo4j REST).

pub mod kv;
pub mod kvgraph;
pub mod nativegraph;
pub mod remote;

pub use kv::KvStore;
pub use kvgraph::KvGraph;
pub use nativegraph::NativeGraph;
pub use remote::RemoteGraph;
