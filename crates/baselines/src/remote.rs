//! `RemoteGraph`: a latency-charging wrapper simulating the client/server
//! deployment of the paper's evaluation (§4.2).
//!
//! Titan and Neo4j ran behind HTTP servers (Rexster, the Neo4j REST API);
//! the Blueprints execution model issues one call per element per step, so
//! traversals pay a round trip per call. This wrapper charges a fixed cost
//! per Blueprints call and counts the calls, making the chatty-protocol
//! effect explicit and tunable. With `latency = 0` it degenerates to call
//! counting only.
//!
//! Scope note: this wrapper models the *baselines'* remote deployments
//! only. SQLGraph itself no longer simulates its client/server path —
//! `sqlgraph-server` is a real framed-TCP front end, and the mixed and
//! connection-sweep benchmarks drive it over actual sockets.

use sqlgraph_gremlin::blueprints::{Blueprints, Direction, GraphResult};
use sqlgraph_json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A Blueprints store behind a simulated network hop.
pub struct RemoteGraph<G> {
    inner: G,
    latency: Duration,
    calls: AtomicU64,
}

impl<G> RemoteGraph<G> {
    /// Wrap `inner`, charging `latency` per call.
    pub fn new(inner: G, latency: Duration) -> RemoteGraph<G> {
        RemoteGraph {
            inner,
            latency,
            calls: AtomicU64::new(0),
        }
    }

    /// Total Blueprints calls made so far.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Reset the call counter.
    pub fn reset_calls(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }

    /// The wrapped store.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    fn charge(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if self.latency.is_zero() {
            return;
        }
        if self.latency >= Duration::from_micros(100) {
            std::thread::sleep(self.latency);
        } else {
            // Sleep granularity is too coarse for sub-100µs hops: spin.
            let start = std::time::Instant::now();
            while start.elapsed() < self.latency {
                std::hint::spin_loop();
            }
        }
    }
}

impl<G: Blueprints> Blueprints for RemoteGraph<G> {
    fn vertex_ids(&self) -> Vec<i64> {
        self.charge();
        self.inner.vertex_ids()
    }

    fn edge_ids(&self) -> Vec<i64> {
        self.charge();
        self.inner.edge_ids()
    }

    fn vertex_exists(&self, v: i64) -> bool {
        self.charge();
        self.inner.vertex_exists(v)
    }

    fn edge_exists(&self, e: i64) -> bool {
        self.charge();
        self.inner.edge_exists(e)
    }

    fn edges_of(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        self.charge();
        self.inner.edges_of(v, dir, labels)
    }

    fn adjacent(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        self.charge();
        self.inner.adjacent(v, dir, labels)
    }

    fn edge_label(&self, e: i64) -> Option<String> {
        self.charge();
        self.inner.edge_label(e)
    }

    fn edge_source(&self, e: i64) -> Option<i64> {
        self.charge();
        self.inner.edge_source(e)
    }

    fn edge_target(&self, e: i64) -> Option<i64> {
        self.charge();
        self.inner.edge_target(e)
    }

    fn vertex_property(&self, v: i64, key: &str) -> Option<Json> {
        self.charge();
        self.inner.vertex_property(v, key)
    }

    fn edge_property(&self, e: i64, key: &str) -> Option<Json> {
        self.charge();
        self.inner.edge_property(e, key)
    }

    fn vertices_by_property(&self, key: &str, value: &Json) -> Vec<i64> {
        self.charge();
        self.inner.vertices_by_property(key, value)
    }

    fn add_vertex(&self, props: &[(String, Json)]) -> GraphResult<i64> {
        self.charge();
        self.inner.add_vertex(props)
    }

    fn add_edge(
        &self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> GraphResult<i64> {
        self.charge();
        self.inner.add_edge(src, dst, label, props)
    }

    fn remove_vertex(&self, v: i64) -> GraphResult<()> {
        self.charge();
        self.inner.remove_vertex(v)
    }

    fn remove_edge(&self, e: i64) -> GraphResult<()> {
        self.charge();
        self.inner.remove_edge(e)
    }

    fn set_vertex_property(&self, v: i64, key: &str, value: &Json) -> GraphResult<()> {
        self.charge();
        self.inner.set_vertex_property(v, key, value)
    }

    fn set_edge_property(&self, e: i64, key: &str, value: &Json) -> GraphResult<()> {
        self.charge();
        self.inner.set_edge_property(e, key, value)
    }
}
