//! `KvGraph`: the Titan-on-BerkeleyDB comparator.
//!
//! Titan lays the property graph out in an ordered key-value store:
//! vertices and edges are records under id-prefixed keys, adjacency lives
//! in key *ranges* (`o/<vid>/<label>/<eid>`), and property lookups go
//! through a composite index keyspace. Every Gremlin step performed by the
//! interpreter becomes point gets and range scans here — the per-element,
//! per-step cost profile the paper measures against.
//!
//! Writes serialize through the KV store's writer lock plus a store-level
//! mutation lock (BerkeleyDB's single-writer behaviour), which is what caps
//! its concurrent update throughput in the LinkBench experiments.

use crate::kv::{decode_i64, encode_i64, KvStore};
use parking_lot::Mutex;
use sqlgraph_gremlin::blueprints::{Blueprints, Direction, GraphError, GraphResult};
use sqlgraph_json::{parse as parse_json, Json, JsonObject};
use std::sync::atomic::{AtomicI64, Ordering};

/// Key space prefixes.
const P_VERTEX: u8 = b'v';
const P_EDGE: u8 = b'e';
const P_OUT: u8 = b'o';
const P_IN: u8 = b'i';
const P_PROP: u8 = b'p';

/// The Titan-style store.
pub struct KvGraph {
    kv: KvStore,
    next_vid: AtomicI64,
    next_eid: AtomicI64,
    /// Store-wide mutation lock: BerkeleyDB-backed Titan serializes writes.
    write_lock: Mutex<()>,
}

impl Default for KvGraph {
    fn default() -> Self {
        KvGraph::new()
    }
}

impl KvGraph {
    /// An empty graph.
    pub fn new() -> KvGraph {
        KvGraph {
            kv: KvStore::new(),
            next_vid: AtomicI64::new(1),
            next_eid: AtomicI64::new(1),
            write_lock: Mutex::new(()),
        }
    }

    /// Approximate storage footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.kv.approx_bytes()
    }

    fn vertex_key(v: i64) -> Vec<u8> {
        let mut k = vec![P_VERTEX];
        k.extend_from_slice(&encode_i64(v));
        k
    }

    fn edge_key(e: i64) -> Vec<u8> {
        let mut k = vec![P_EDGE];
        k.extend_from_slice(&encode_i64(e));
        k
    }

    /// `o/<vid>/<label>\0<eid>` — label embedded so labeled scans are a
    /// tighter range.
    fn adj_key(prefix: u8, v: i64, label: &str, e: i64) -> Vec<u8> {
        let mut k = vec![prefix];
        k.extend_from_slice(&encode_i64(v));
        k.extend_from_slice(label.as_bytes());
        k.push(0);
        k.extend_from_slice(&encode_i64(e));
        k
    }

    fn adj_prefix(prefix: u8, v: i64, label: Option<&str>) -> Vec<u8> {
        let mut k = vec![prefix];
        k.extend_from_slice(&encode_i64(v));
        if let Some(l) = label {
            k.extend_from_slice(l.as_bytes());
            k.push(0);
        }
        k
    }

    fn prop_key(key: &str, value: &Json, id: i64) -> Vec<u8> {
        let mut k = vec![P_PROP];
        k.extend_from_slice(key.as_bytes());
        k.push(0);
        k.extend_from_slice(value.to_string().as_bytes());
        k.push(0);
        k.extend_from_slice(&encode_i64(id));
        k
    }

    fn prop_prefix(key: &str, value: &Json) -> Vec<u8> {
        let mut k = vec![P_PROP];
        k.extend_from_slice(key.as_bytes());
        k.push(0);
        k.extend_from_slice(value.to_string().as_bytes());
        k.push(0);
        k
    }

    fn load_doc(&self, key: &[u8]) -> Option<Json> {
        let bytes = self.kv.get(key)?;
        parse_json(std::str::from_utf8(&bytes).ok()?).ok()
    }

    fn store_doc(&self, key: Vec<u8>, doc: &Json) {
        self.kv.put(key, doc.to_string().into_bytes());
    }

    fn edge_doc(&self, e: i64) -> Option<Json> {
        self.load_doc(&Self::edge_key(e))
    }

    fn eid_from_adj_key(key: &[u8]) -> i64 {
        decode_i64(&key[key.len() - 8..])
    }
}

fn props_doc(props: &[(String, Json)]) -> Json {
    Json::Object(props.iter().cloned().collect::<JsonObject>())
}

impl Blueprints for KvGraph {
    fn vertex_ids(&self) -> Vec<i64> {
        self.kv
            .scan_keys(&[P_VERTEX])
            .into_iter()
            .map(|k| decode_i64(&k[1..]))
            .collect()
    }

    fn edge_ids(&self) -> Vec<i64> {
        self.kv
            .scan_keys(&[P_EDGE])
            .into_iter()
            .map(|k| decode_i64(&k[1..]))
            .collect()
    }

    fn vertex_exists(&self, v: i64) -> bool {
        self.kv.contains(&Self::vertex_key(v))
    }

    fn edge_exists(&self, e: i64) -> bool {
        self.kv.contains(&Self::edge_key(e))
    }

    fn edges_of(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        let mut out = Vec::new();
        let scan = |prefix_byte: u8, out: &mut Vec<i64>| {
            if labels.is_empty() {
                for k in self.kv.scan_keys(&Self::adj_prefix(prefix_byte, v, None)) {
                    out.push(Self::eid_from_adj_key(&k));
                }
            } else {
                for label in labels {
                    for k in self
                        .kv
                        .scan_keys(&Self::adj_prefix(prefix_byte, v, Some(label)))
                    {
                        out.push(Self::eid_from_adj_key(&k));
                    }
                }
            }
        };
        if matches!(dir, Direction::Out | Direction::Both) {
            scan(P_OUT, &mut out);
        }
        if matches!(dir, Direction::In | Direction::Both) {
            scan(P_IN, &mut out);
        }
        out
    }

    fn edge_label(&self, e: i64) -> Option<String> {
        self.edge_doc(e)?.get("lbl")?.as_str().map(str::to_string)
    }

    fn edge_source(&self, e: i64) -> Option<i64> {
        self.edge_doc(e)?.get("src")?.as_i64()
    }

    fn edge_target(&self, e: i64) -> Option<i64> {
        self.edge_doc(e)?.get("dst")?.as_i64()
    }

    fn vertex_property(&self, v: i64, key: &str) -> Option<Json> {
        self.load_doc(&Self::vertex_key(v))?.get(key).cloned()
    }

    fn edge_property(&self, e: i64, key: &str) -> Option<Json> {
        self.edge_doc(e)?.get("props")?.get(key).cloned()
    }

    fn vertices_by_property(&self, key: &str, value: &Json) -> Vec<i64> {
        // Composite index range scan.
        self.kv
            .scan_keys(&Self::prop_prefix(key, value))
            .into_iter()
            .map(|k| decode_i64(&k[k.len() - 8..]))
            .collect()
    }

    fn add_vertex(&self, props: &[(String, Json)]) -> GraphResult<i64> {
        let _guard = self.write_lock.lock();
        let id = self.next_vid.fetch_add(1, Ordering::SeqCst);
        self.store_doc(Self::vertex_key(id), &props_doc(props));
        for (k, v) in props {
            self.kv.put(Self::prop_key(k, v, id), Vec::new());
        }
        Ok(id)
    }

    fn add_edge(
        &self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> GraphResult<i64> {
        let _guard = self.write_lock.lock();
        if !self.vertex_exists(src) {
            return Err(GraphError::new(format!("no vertex {src}")));
        }
        if !self.vertex_exists(dst) {
            return Err(GraphError::new(format!("no vertex {dst}")));
        }
        let id = self.next_eid.fetch_add(1, Ordering::SeqCst);
        let mut doc = JsonObject::new();
        doc.insert("src", Json::int(src));
        doc.insert("dst", Json::int(dst));
        doc.insert("lbl", Json::str(label));
        doc.insert("props", props_doc(props));
        self.store_doc(Self::edge_key(id), &Json::Object(doc));
        self.kv
            .put(Self::adj_key(P_OUT, src, label, id), Vec::new());
        self.kv.put(Self::adj_key(P_IN, dst, label, id), Vec::new());
        Ok(id)
    }

    fn remove_vertex(&self, v: i64) -> GraphResult<()> {
        let _guard = self.write_lock.lock();
        let Some(doc) = self.load_doc(&Self::vertex_key(v)) else {
            return Err(GraphError::new(format!("no vertex {v}")));
        };
        // Incident edges from both adjacency ranges.
        let mut incident: Vec<i64> = Vec::new();
        for p in [P_OUT, P_IN] {
            for k in self.kv.scan_keys(&Self::adj_prefix(p, v, None)) {
                incident.push(Self::eid_from_adj_key(&k));
            }
        }
        incident.sort_unstable();
        incident.dedup();
        for e in incident {
            self.remove_edge_locked(e)?;
        }
        // Property index entries.
        if let Some(obj) = doc.as_object() {
            for (k, val) in obj.iter() {
                self.kv.delete(&Self::prop_key(k, val, v));
            }
        }
        self.kv.delete(&Self::vertex_key(v));
        self.kv.delete_prefix(&Self::adj_prefix(P_OUT, v, None));
        self.kv.delete_prefix(&Self::adj_prefix(P_IN, v, None));
        Ok(())
    }

    fn remove_edge(&self, e: i64) -> GraphResult<()> {
        let _guard = self.write_lock.lock();
        self.remove_edge_locked(e)
    }

    fn set_vertex_property(&self, v: i64, key: &str, value: &Json) -> GraphResult<()> {
        let _guard = self.write_lock.lock();
        let Some(mut doc) = self.load_doc(&Self::vertex_key(v)) else {
            return Err(GraphError::new(format!("no vertex {v}")));
        };
        if let Some(obj) = doc.as_object_mut() {
            if let Some(old) = obj.get(key).cloned() {
                self.kv.delete(&Self::prop_key(key, &old, v));
            }
            obj.insert(key, value.clone());
        }
        self.kv.put(Self::prop_key(key, value, v), Vec::new());
        self.store_doc(Self::vertex_key(v), &doc);
        Ok(())
    }

    fn set_edge_property(&self, e: i64, key: &str, value: &Json) -> GraphResult<()> {
        let _guard = self.write_lock.lock();
        let Some(mut doc) = self.edge_doc(e) else {
            return Err(GraphError::new(format!("no edge {e}")));
        };
        if let Some(props) = doc.as_object_mut().and_then(|o| o.get_mut("props")) {
            if let Some(obj) = props.as_object_mut() {
                obj.insert(key, value.clone());
            }
        }
        self.store_doc(Self::edge_key(e), &doc);
        Ok(())
    }
}

impl KvGraph {
    fn remove_edge_locked(&self, e: i64) -> GraphResult<()> {
        let Some(doc) = self.edge_doc(e) else {
            return Err(GraphError::new(format!("no edge {e}")));
        };
        let src = doc.get("src").and_then(Json::as_i64).unwrap_or(-1);
        let dst = doc.get("dst").and_then(Json::as_i64).unwrap_or(-1);
        let label = doc
            .get("lbl")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        self.kv.delete(&Self::adj_key(P_OUT, src, &label, e));
        self.kv.delete(&Self::adj_key(P_IN, dst, &label, e));
        self.kv.delete(&Self::edge_key(e));
        Ok(())
    }
}
