//! An ordered key-value store — the BerkeleyDB stand-in under the
//! Titan-style baseline.
//!
//! Sorted map semantics with prefix/range scans, a single-writer lock, and
//! an optional append-only log for durability parity with the other stores.
//! The cost structure is what matters for the reproduction: every graph
//! operation on top of this store becomes one or more key probes or range
//! scans.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Byte-key ordered store.
#[derive(Debug, Default)]
pub struct KvStore {
    map: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> KvStore {
        KvStore::default()
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.read().get(key).cloned()
    }

    /// True if the key exists.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.map.read().contains_key(key)
    }

    /// Insert or replace.
    pub fn put(&self, key: Vec<u8>, value: Vec<u8>) {
        self.map.write().insert(key, value);
    }

    /// Delete; returns true if the key existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.map.write().remove(key).is_some()
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, in order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let map = self.map.read();
        map.range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Keys with `prefix`, values discarded (adjacency scans).
    pub fn scan_keys(&self, prefix: &[u8]) -> Vec<Vec<u8>> {
        let map = self.map.read();
        map.range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Delete every key with `prefix`; returns how many were removed.
    pub fn delete_prefix(&self, prefix: &[u8]) -> usize {
        let mut map = self.map.write();
        let keys: Vec<Vec<u8>> = map
            .range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect();
        let n = keys.len();
        for k in keys {
            map.remove(&k);
        }
        n
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Approximate bytes held (for the disk-size comparison).
    pub fn approx_bytes(&self) -> usize {
        self.map
            .read()
            .iter()
            .map(|(k, v)| k.len() + v.len() + 16)
            .sum()
    }
}

/// Order-preserving big-endian encoding of an i64 (offset so negatives sort
/// before positives).
pub fn encode_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Inverse of [`encode_i64`].
pub fn decode_i64(bytes: &[u8]) -> i64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[..8]);
    (u64::from_be_bytes(buf) ^ (1u64 << 63)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_ops() {
        let kv = KvStore::new();
        kv.put(b"a".to_vec(), b"1".to_vec());
        kv.put(b"b".to_vec(), b"2".to_vec());
        assert_eq!(kv.get(b"a"), Some(b"1".to_vec()));
        assert!(kv.contains(b"b"));
        assert!(kv.delete(b"a"));
        assert!(!kv.delete(b"a"));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn prefix_scans_are_ordered_and_bounded() {
        let kv = KvStore::new();
        for (k, v) in [("x/1", "a"), ("x/2", "b"), ("y/1", "c"), ("x/10", "d")] {
            kv.put(k.as_bytes().to_vec(), v.as_bytes().to_vec());
        }
        let hits = kv.scan_prefix(b"x/");
        assert_eq!(hits.len(), 3);
        assert!(hits.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(kv.delete_prefix(b"x/"), 3);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn i64_encoding_preserves_order() {
        let values = [i64::MIN, -5, -1, 0, 1, 42, i64::MAX];
        let encoded: Vec<[u8; 8]> = values.iter().map(|&v| encode_i64(v)).collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &v in &values {
            assert_eq!(decode_i64(&encode_i64(v)), v);
        }
    }
}
