//! `NativeGraph`: the Neo4j-style comparator.
//!
//! Record-based native graph storage: fixed vertex records pointing at the
//! head of per-vertex linked chains of edge records, exactly the Neo4j 1.x
//! store layout. Traversal is pointer chasing (chain walks); attribute
//! access reads the record's property map; a Lucene-like property index
//! serves `g.V('key', value)` starts.
//!
//! Concurrency mirrors the era's behaviour for the LinkBench shape: one
//! store-wide RwLock — concurrent readers scale, writers serialize.

use parking_lot::RwLock;
use sqlgraph_gremlin::blueprints::{Blueprints, Direction, GraphError, GraphResult};
use sqlgraph_json::Json;
use std::collections::HashMap;

type EdgePtr = Option<usize>;

#[derive(Debug, Clone)]
struct VertexRec {
    first_out: EdgePtr,
    first_in: EdgePtr,
    props: HashMap<String, Json>,
}

#[derive(Debug, Clone)]
struct EdgeRec {
    src: i64,
    dst: i64,
    label: u32,
    next_out: EdgePtr,
    prev_out: EdgePtr,
    next_in: EdgePtr,
    prev_in: EdgePtr,
    props: HashMap<String, Json>,
}

#[derive(Debug, Default)]
struct Inner {
    vertices: Vec<Option<VertexRec>>,
    edges: Vec<Option<EdgeRec>>,
    labels: Vec<String>,
    label_ids: HashMap<String, u32>,
    /// Lucene-analogue property index: (key, rendered value) → vertex ids.
    prop_index: HashMap<(String, String), Vec<i64>>,
}

impl Inner {
    fn label_id(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let id = self.labels.len() as u32;
        self.labels.push(label.to_string());
        self.label_ids.insert(label.to_string(), id);
        id
    }

    fn vertex(&self, v: i64) -> Option<&VertexRec> {
        if v < 1 {
            return None;
        }
        self.vertices.get(v as usize - 1)?.as_ref()
    }

    fn index_put(&mut self, key: &str, value: &Json, vid: i64) {
        self.prop_index
            .entry((key.to_string(), value.to_string()))
            .or_default()
            .push(vid);
    }

    fn index_del(&mut self, key: &str, value: &Json, vid: i64) {
        if let Some(ids) = self
            .prop_index
            .get_mut(&(key.to_string(), value.to_string()))
        {
            ids.retain(|&x| x != vid);
        }
    }

    /// Unlink an edge record from both chains and free it.
    fn unlink_edge(&mut self, eid0: usize) {
        let Some(rec) = self.edges[eid0].take() else {
            return;
        };
        // Out chain.
        match rec.prev_out {
            Some(p) => {
                if let Some(Some(prev)) = self.edges.get_mut(p) {
                    prev.next_out = rec.next_out;
                }
            }
            None => {
                if let Some(Some(v)) = self.vertices.get_mut(rec.src as usize - 1) {
                    v.first_out = rec.next_out;
                }
            }
        }
        if let Some(n) = rec.next_out {
            if let Some(Some(next)) = self.edges.get_mut(n) {
                next.prev_out = rec.prev_out;
            }
        }
        // In chain.
        match rec.prev_in {
            Some(p) => {
                if let Some(Some(prev)) = self.edges.get_mut(p) {
                    prev.next_in = rec.next_in;
                }
            }
            None => {
                if let Some(Some(v)) = self.vertices.get_mut(rec.dst as usize - 1) {
                    v.first_in = rec.next_in;
                }
            }
        }
        if let Some(n) = rec.next_in {
            if let Some(Some(next)) = self.edges.get_mut(n) {
                next.prev_in = rec.prev_in;
            }
        }
    }
}

/// The Neo4j-style store.
#[derive(Debug, Default)]
pub struct NativeGraph {
    inner: RwLock<Inner>,
}

impl NativeGraph {
    /// An empty graph.
    pub fn new() -> NativeGraph {
        NativeGraph::default()
    }

    /// Approximate storage footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        let inner = self.inner.read();
        let vbytes: usize = inner
            .vertices
            .iter()
            .flatten()
            .map(|v| {
                24 + v
                    .props
                    .iter()
                    .map(|(k, j)| k.len() + j.to_string().len())
                    .sum::<usize>()
            })
            .sum();
        let ebytes: usize = inner
            .edges
            .iter()
            .flatten()
            .map(|e| {
                56 + e
                    .props
                    .iter()
                    .map(|(k, j)| k.len() + j.to_string().len())
                    .sum::<usize>()
            })
            .sum();
        vbytes + ebytes
    }
}

impl Blueprints for NativeGraph {
    fn vertex_ids(&self) -> Vec<i64> {
        let inner = self.inner.read();
        inner
            .vertices
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|_| i as i64 + 1))
            .collect()
    }

    fn edge_ids(&self) -> Vec<i64> {
        let inner = self.inner.read();
        inner
            .edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|_| i as i64 + 1))
            .collect()
    }

    fn vertex_exists(&self, v: i64) -> bool {
        self.inner.read().vertex(v).is_some()
    }

    fn edge_exists(&self, e: i64) -> bool {
        e >= 1
            && self
                .inner
                .read()
                .edges
                .get(e as usize - 1)
                .is_some_and(Option::is_some)
    }

    fn edges_of(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        let inner = self.inner.read();
        let Some(rec) = inner.vertex(v) else {
            return Vec::new();
        };
        let label_ids: Vec<u32> = labels
            .iter()
            .filter_map(|l| inner.label_ids.get(l).copied())
            .collect();
        if !labels.is_empty() && label_ids.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut walk = |mut cur: EdgePtr, out_chain: bool| {
            while let Some(idx) = cur {
                let Some(e) = inner.edges.get(idx).and_then(Option::as_ref) else {
                    break;
                };
                if labels.is_empty() || label_ids.contains(&e.label) {
                    out.push(idx as i64 + 1);
                }
                cur = if out_chain { e.next_out } else { e.next_in };
            }
        };
        if matches!(dir, Direction::Out | Direction::Both) {
            walk(rec.first_out, true);
        }
        if matches!(dir, Direction::In | Direction::Both) {
            walk(rec.first_in, false);
        }
        out
    }

    fn edge_label(&self, e: i64) -> Option<String> {
        let inner = self.inner.read();
        let rec = inner.edges.get(e as usize - 1)?.as_ref()?;
        inner.labels.get(rec.label as usize).cloned()
    }

    fn edge_source(&self, e: i64) -> Option<i64> {
        self.inner
            .read()
            .edges
            .get(e as usize - 1)?
            .as_ref()
            .map(|r| r.src)
    }

    fn edge_target(&self, e: i64) -> Option<i64> {
        self.inner
            .read()
            .edges
            .get(e as usize - 1)?
            .as_ref()
            .map(|r| r.dst)
    }

    fn vertex_property(&self, v: i64, key: &str) -> Option<Json> {
        self.inner.read().vertex(v)?.props.get(key).cloned()
    }

    fn edge_property(&self, e: i64, key: &str) -> Option<Json> {
        self.inner
            .read()
            .edges
            .get(e as usize - 1)?
            .as_ref()?
            .props
            .get(key)
            .cloned()
    }

    fn vertices_by_property(&self, key: &str, value: &Json) -> Vec<i64> {
        self.inner
            .read()
            .prop_index
            .get(&(key.to_string(), value.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    fn add_vertex(&self, props: &[(String, Json)]) -> GraphResult<i64> {
        let mut inner = self.inner.write();
        inner.vertices.push(Some(VertexRec {
            first_out: None,
            first_in: None,
            props: props.iter().cloned().collect(),
        }));
        let vid = inner.vertices.len() as i64;
        for (k, v) in props {
            inner.index_put(k, v, vid);
        }
        Ok(vid)
    }

    fn add_edge(
        &self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> GraphResult<i64> {
        let mut inner = self.inner.write();
        if inner.vertex(src).is_none() {
            return Err(GraphError::new(format!("no vertex {src}")));
        }
        if inner.vertex(dst).is_none() {
            return Err(GraphError::new(format!("no vertex {dst}")));
        }
        let label = inner.label_id(label);
        let idx = inner.edges.len();
        let old_out = inner.vertices[src as usize - 1].as_ref().unwrap().first_out;
        let old_in = inner.vertices[dst as usize - 1].as_ref().unwrap().first_in;
        inner.edges.push(Some(EdgeRec {
            src,
            dst,
            label,
            next_out: old_out,
            prev_out: None,
            next_in: old_in,
            prev_in: None,
            props: props.iter().cloned().collect(),
        }));
        if let Some(o) = old_out {
            if let Some(Some(e)) = inner.edges.get_mut(o) {
                e.prev_out = Some(idx);
            }
        }
        if let Some(i) = old_in {
            if let Some(Some(e)) = inner.edges.get_mut(i) {
                e.prev_in = Some(idx);
            }
        }
        inner.vertices[src as usize - 1].as_mut().unwrap().first_out = Some(idx);
        inner.vertices[dst as usize - 1].as_mut().unwrap().first_in = Some(idx);
        Ok(idx as i64 + 1)
    }

    fn remove_vertex(&self, v: i64) -> GraphResult<()> {
        let mut inner = self.inner.write();
        let Some(rec) = inner.vertex(v).cloned() else {
            return Err(GraphError::new(format!("no vertex {v}")));
        };
        // Collect incident edges by chain walks, then unlink each.
        let mut incident = Vec::new();
        let mut cur = rec.first_out;
        while let Some(idx) = cur {
            let e = inner.edges[idx].as_ref().expect("chain intact");
            incident.push(idx);
            cur = e.next_out;
        }
        let mut cur = rec.first_in;
        while let Some(idx) = cur {
            let e = inner.edges[idx].as_ref().expect("chain intact");
            incident.push(idx);
            cur = e.next_in;
        }
        incident.sort_unstable();
        incident.dedup();
        for idx in incident {
            inner.unlink_edge(idx);
        }
        for (k, val) in rec.props.iter() {
            inner.index_del(k, val, v);
        }
        inner.vertices[v as usize - 1] = None;
        Ok(())
    }

    fn remove_edge(&self, e: i64) -> GraphResult<()> {
        let mut inner = self.inner.write();
        if e < 1 || inner.edges.get(e as usize - 1).is_none_or(Option::is_none) {
            return Err(GraphError::new(format!("no edge {e}")));
        }
        inner.unlink_edge(e as usize - 1);
        Ok(())
    }

    fn set_vertex_property(&self, v: i64, key: &str, value: &Json) -> GraphResult<()> {
        let mut inner = self.inner.write();
        if inner.vertex(v).is_none() {
            return Err(GraphError::new(format!("no vertex {v}")));
        }
        let old = inner.vertices[v as usize - 1]
            .as_mut()
            .unwrap()
            .props
            .insert(key.to_string(), value.clone());
        if let Some(old) = old {
            inner.index_del(key, &old, v);
        }
        inner.index_put(key, value, v);
        Ok(())
    }

    fn set_edge_property(&self, e: i64, key: &str, value: &Json) -> GraphResult<()> {
        let mut inner = self.inner.write();
        let Some(Some(rec)) = inner.edges.get_mut(e as usize - 1) else {
            return Err(GraphError::new(format!("no edge {e}")));
        };
        rec.props.insert(key.to_string(), value.clone());
        Ok(())
    }
}
