//! Durability: SQLGraph on a write-ahead log — build, "crash", recover.
//!
//! ```sh
//! cargo run --example durability
//! ```

use sqlgraph::core::{SchemaConfig, SqlGraph};
use sqlgraph::rel::Value;

fn main() {
    let mut wal = std::env::temp_dir();
    wal.push(format!(
        "sqlgraph-durability-demo-{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&wal);
    println!("WAL: {}", wal.display());

    // Session 1: create some state, then drop the store (simulated crash —
    // nothing is checkpointed, only the log survives).
    {
        let g = SqlGraph::open(&wal, SchemaConfig::default()).unwrap();
        g.database().set_sync_on_commit(true);
        let alice = g.add_vertex([("name", "alice".into())]).unwrap();
        let bob = g.add_vertex([("name", "bob".into())]).unwrap();
        let carol = g.add_vertex([("name", "carol".into())]).unwrap();
        g.add_edge(alice, bob, "follows", []).unwrap();
        g.add_edge(bob, carol, "follows", []).unwrap();
        g.query("g.v(1).setProperty('age', 30)").unwrap();
        g.query("g.removeVertex(g.v(3))").unwrap();
        println!(
            "session 1: {} vertices visible",
            g.query("g.V.count()")
                .unwrap()
                .scalar()
                .and_then(Value::as_int)
                .unwrap()
        );
        // A rolled-back transaction never reaches the log.
        let _ = g.database().transaction(|tx| {
            tx.execute("INSERT INTO va VALUES (99, NULL)")?;
            Err::<(), _>(sqlgraph::rel::Error::RolledBack("simulated failure".into()))
        });
        // Checkpoint: snapshot the state and rotate the log, so recovery
        // replays only what comes after.
        let ckpt = g.checkpoint().unwrap();
        println!(
            "checkpoint: gen {}, {} bytes, {} tables, {} old segment(s) retired",
            ckpt.gen, ckpt.bytes, ckpt.tables, ckpt.retired_segments
        );
        // Post-checkpoint tail: the only work recovery has to redo.
        g.query("g.v(2).setProperty('age', 27)").unwrap();
    } // <- crash

    // Session 2: recover = load the snapshot, replay the tail segment.
    {
        let g = SqlGraph::open(&wal, SchemaConfig::default()).unwrap();
        let report = g.recovery_report().expect("opened from a log");
        println!(
            "recovery: snapshot gen {:?}, {} segment(s) scanned, {} commit(s) replayed",
            report.snapshot_gen, report.segments_scanned, report.commits_replayed
        );
        println!(
            "session 2 (recovered): {} vertices visible",
            g.query("g.V.count()")
                .unwrap()
                .scalar()
                .and_then(Value::as_int)
                .unwrap()
        );
        println!(
            "  alice follows: {:?}",
            g.query("g.v(1).out('follows').values('name')")
                .unwrap()
                .strings()
        );
        println!(
            "  alice's age:   {:?}",
            g.query("g.v(1).values('age')").unwrap().strings()
        );
        assert!(
            g.query("g.v(99)").unwrap().rows.is_empty(),
            "rollback must not survive"
        );
        // New writes continue in the same log without id collisions.
        let dave = g.add_vertex([("name", "dave".into())]).unwrap();
        println!("  new vertex after recovery got id {dave}");
    }

    // The checkpoint retired the gen-0 segment; clean up what remains.
    for suffix in ["", ".g1", ".ckpt"] {
        let mut p = wal.clone().into_os_string();
        p.push(suffix);
        let _ = std::fs::remove_file(p);
    }
    println!("done.");
}
