//! Social-network scenario: a LinkBench-style workload (the paper's §5.2)
//! against SQLGraph — concurrent requesters running the Facebook operation
//! mix, with per-operation latency reporting.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use sqlgraph::core::{GraphData, SqlGraph};
use sqlgraph::datagen::linkbench::{self, LinkBenchConfig, Op, Workload};
use sqlgraph::gremlin::Blueprints;
use sqlgraph::rel::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn main() {
    let config = LinkBenchConfig::with_nodes(5_000);
    println!("generating LinkBench graph ({} nodes)...", config.nodes);
    let data = linkbench::generate(&config);
    println!(
        "  {} nodes, {} associations",
        data.vertex_count(),
        data.edge_count()
    );

    let g = SqlGraph::new_in_memory();
    g.bulk_load(&GraphData {
        vertices: data.vertices.clone(),
        edges: data.edges.clone(),
    })
    .unwrap();

    // A few single requests, the Gremlin way.
    println!("\nsample requests:");
    for q in [
        "g.v(3).outE('assoc_0').count()", // count_link
        "g.v(3).out('assoc_0')[0..9]",    // get_link_list page
        "g.v(7).values('data')",          // get_node
    ] {
        let out = g.query(q).unwrap();
        println!("  {q:<40} -> {} rows", out.rows.len());
    }

    // Concurrent operation mix (Table 6 distribution) from 8 requesters.
    let requesters = 8;
    let ops_per_requester = 2_000;
    let done = AtomicU64::new(0);
    println!("\nrunning {requesters} requesters x {ops_per_requester} ops...");
    let t0 = Instant::now();
    let all_latencies = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for r in 0..requesters {
            let g = &g;
            let done = &done;
            handles.push(scope.spawn(move |_| {
                let mut wl = Workload::new(42, r, config.nodes, 32);
                let mut lat: HashMap<&'static str, (f64, usize)> = HashMap::new();
                for _ in 0..ops_per_requester {
                    let op = wl.next_op();
                    let t = Instant::now();
                    apply(g, &op);
                    let entry = lat.entry(op.name()).or_default();
                    entry.0 += t.elapsed().as_secs_f64();
                    entry.1 += 1;
                    done.fetch_add(1, Ordering::Relaxed);
                }
                lat
            }));
        }
        let mut merged: HashMap<&'static str, (f64, usize)> = HashMap::new();
        for h in handles {
            for (name, (total, n)) in h.join().unwrap() {
                let e = merged.entry(name).or_default();
                e.0 += total;
                e.1 += n;
            }
        }
        merged
    })
    .unwrap();
    let elapsed = t0.elapsed().as_secs_f64();
    let total = done.load(Ordering::Relaxed);
    println!(
        "  {total} ops in {elapsed:.2}s = {:.0} op/sec",
        total as f64 / elapsed
    );
    println!("\nper-operation mean latency:");
    let mut rows: Vec<_> = all_latencies.into_iter().collect();
    rows.sort_by_key(|(name, _)| *name);
    for (name, (total_s, n)) in rows {
        println!(
            "  {:<16} {:>10.3} ms  ({n} ops)",
            name,
            1e3 * total_s / n as f64
        );
    }

    // Consistency check after the storm: EA and the adjacency tables agree.
    let ea_edges = g.database().table_len("ea").unwrap();
    let rel = g.database().execute("SELECT COUNT(*) FROM osa").unwrap();
    println!(
        "\nfinal state: {} edges in EA, {} secondary adjacency rows",
        ea_edges,
        rel.scalar().and_then(Value::as_int).unwrap_or(0)
    );
}

/// Apply one LinkBench operation through the Blueprints API (errors from
/// racing deletes are expected and ignored).
fn apply(g: &SqlGraph, op: &Op) {
    match op {
        Op::AddNode { props } => {
            let _ = g.add_vertex(props.iter().map(|(k, v)| (k.as_str(), v.clone())));
        }
        Op::UpdateNode { id } => {
            let _ = Blueprints::set_vertex_property(g, *id, "version", &2i64.into());
        }
        Op::DeleteNode { id } => {
            let _ = Blueprints::remove_vertex(g, *id);
        }
        Op::GetNode { id } => {
            let _ = Blueprints::vertex_property(g, *id, "data");
        }
        Op::AddLink { src, dst, ltype } => {
            let _ = g.add_edge(*src, *dst, ltype, [("visibility", 1i64.into())]);
        }
        Op::DeleteLink { src, dst, ltype } => {
            let edges = g.database().execute_with_params(
                "SELECT eid FROM ea WHERE inv = ? AND lbl = ? AND outv = ?",
                &[Value::Int(*src), Value::str(*ltype), Value::Int(*dst)],
            );
            if let Ok(rel) = edges {
                if let Some(eid) = rel.int_column().first() {
                    let _ = Blueprints::remove_edge(g, *eid);
                }
            }
        }
        Op::UpdateLink { src, dst, ltype } => {
            let edges = g.database().execute_with_params(
                "SELECT eid FROM ea WHERE inv = ? AND lbl = ? AND outv = ?",
                &[Value::Int(*src), Value::str(*ltype), Value::Int(*dst)],
            );
            if let Ok(rel) = edges {
                if let Some(eid) = rel.int_column().first() {
                    let _ = Blueprints::set_edge_property(g, *eid, "timestamp", &1i64.into());
                }
            }
        }
        Op::CountLink { id, ltype } => {
            let _ = g.database().execute_with_params(
                "SELECT COUNT(*) FROM ea WHERE inv = ? AND lbl = ?",
                &[Value::Int(*id), Value::str(*ltype)],
            );
        }
        Op::MultigetLink { src, dsts, ltype } => {
            let list: Vec<String> = dsts.iter().map(i64::to_string).collect();
            let _ = g.database().execute_with_params(
                &format!(
                    "SELECT eid FROM ea WHERE inv = ? AND lbl = ? AND outv IN ({})",
                    list.join(", ")
                ),
                &[Value::Int(*src), Value::str(*ltype)],
            );
        }
        Op::GetLinkList { id, ltype } => {
            let _ = g.database().execute_with_params(
                "SELECT eid, outv, attr FROM ea WHERE inv = ? AND lbl = ?",
                &[Value::Int(*id), Value::str(*ltype)],
            );
        }
    }
}
