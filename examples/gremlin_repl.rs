//! Interactive Gremlin shell over SQLGraph.
//!
//! ```sh
//! cargo run --example gremlin_repl
//! ```
//!
//! Commands:
//! * any Gremlin statement — executed (queries compile to one SQL statement)
//! * `:sql <query>`  — show the generated SQL without running it
//! * `:plan <query>` — EXPLAIN: show the engine's access-path decisions
//! * `:tables`       — list the store's relational tables and row counts
//! * `:quit`

use sqlgraph::core::SqlGraph;
use std::io::{self, BufRead, Write};

fn main() {
    let g = SqlGraph::new_in_memory();
    // Seed with the paper's Figure 2a sample.
    let marko = g
        .add_vertex([("name", "marko".into()), ("age", 29i64.into())])
        .unwrap();
    let vadas = g
        .add_vertex([("name", "vadas".into()), ("age", 27i64.into())])
        .unwrap();
    let lop = g
        .add_vertex([("name", "lop".into()), ("lang", "java".into())])
        .unwrap();
    let josh = g
        .add_vertex([("name", "josh".into()), ("age", 32i64.into())])
        .unwrap();
    g.add_edge(marko, vadas, "knows", [("weight", 0.5f64.into())])
        .unwrap();
    g.add_edge(marko, josh, "knows", [("weight", 1.0f64.into())])
        .unwrap();
    g.add_edge(marko, lop, "created", [("weight", 0.4f64.into())])
        .unwrap();
    g.add_edge(josh, vadas, "likes", [("weight", 0.2f64.into())])
        .unwrap();
    g.add_edge(josh, lop, "created", [("weight", 0.8f64.into())])
        .unwrap();

    println!("SQLGraph Gremlin shell — Figure 2a sample loaded (4 vertices, 5 edges).");
    println!("Try: g.V.has('name','marko').out('knows').values('name')");
    println!("     :sql g.V.out.dedup().count()   |   :tables   |   :quit");

    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        print!("gremlin> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":tables" {
            for t in g.database().table_names() {
                println!(
                    "  {:<6} {:>8} rows",
                    t,
                    g.database().table_len(&t).unwrap_or(0)
                );
            }
            continue;
        }
        if let Some(q) = line.strip_prefix(":sql ") {
            match g.translate_query(q) {
                Ok(sql) => println!("{sql}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Some(q) = line.strip_prefix(":plan ") {
            match g.explain_query(q) {
                Ok(rel) => {
                    for row in &rel.rows {
                        println!("  {}", row[0]);
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        match g.query(line) {
            Ok(rel) => {
                for row in rel.rows.iter().take(50) {
                    println!("  {}", row[0]);
                }
                if rel.rows.len() > 50 {
                    println!("  ... ({} rows total)", rel.rows.len());
                }
                if rel.rows.is_empty() {
                    println!("  (no results)");
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
