//! Knowledge-graph scenario: load a DBpedia-like graph (the paper's §3.1
//! conversion) into SQLGraph and run the evaluation's query styles —
//! typed starts, k-hop containment traversals, attribute lookups.
//!
//! ```sh
//! cargo run --release --example knowledge_graph
//! ```

use sqlgraph::core::{GraphData, SqlGraph};
use sqlgraph::datagen::dbpedia::{self, DbpediaConfig};
use std::time::Instant;

fn main() {
    let config = DbpediaConfig {
        seed: 7,
        ..DbpediaConfig::default()
    };
    println!(
        "generating DBpedia-like graph ({} places, {} players)...",
        config.places, config.players
    );
    let graph = dbpedia::generate(&config);
    println!(
        "  {} vertices, {} edges",
        graph.data.vertex_count(),
        graph.data.edge_count()
    );

    let g = SqlGraph::new_in_memory();
    let t0 = Instant::now();
    g.bulk_load(&GraphData {
        vertices: graph.data.vertices.clone(),
        edges: graph.data.edges.clone(),
    })
    .unwrap();
    println!("  bulk load (with coloring layout): {:?}", t0.elapsed());

    let (out_stats, in_stats) = g.load_stats().unwrap();
    println!(
        "  layout: {} out-labels in {} max/bucket, {:.1}% spills; {} in-labels, {:.1}% spills",
        out_stats.hashed_labels,
        out_stats.max_bucket_size,
        out_stats.spill_percent(),
        in_stats.hashed_labels,
        in_stats.spill_percent()
    );

    // Typed start (GraphQuery rewrite) + traversal.
    let q = format!(
        "g.V('uri','{}').in('type').has('national').count()",
        dbpedia::CLASS_PERSON
    );
    run(&g, &q);

    // Containment chains of increasing depth.
    let deep = graph.ids.deep_places[0];
    for hops in [3, 6, 9] {
        let mut q = format!("g.v({deep})");
        for _ in 0..hops {
            q.push_str(".out('isPartOf')");
        }
        q.push_str(".path");
        run(&g, &q);
    }

    // Attribute lookups on the JSON attribute table.
    run(&g, "g.V.has('populationDensitySqMi', T.gt, 5000).count()");
    run(&g, "g.V.has('regionAffiliation', '1958').values('uri')");

    // Player-team neighborhood, ignoring edge direction.
    let player = graph.ids.players.0;
    run(
        &g,
        &format!("g.v({player}).both('team').both('team').dedup().count()"),
    );
}

fn run(g: &SqlGraph, q: &str) {
    let t = Instant::now();
    let out = g.query(q).unwrap();
    let shown: Vec<String> = out.strings().into_iter().take(3).collect();
    println!(
        "{:<80} {:>9.3?} ms  -> {} rows {:?}{}",
        q,
        t.elapsed().as_secs_f64() * 1e3,
        out.rows.len(),
        shown,
        if out.rows.len() > 3 { " ..." } else { "" }
    );
}
