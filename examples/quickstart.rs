//! Quickstart: build the paper's Figure 2a sample graph, query it with
//! Gremlin, and peek at the SQL each traversal compiles to.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sqlgraph::core::SqlGraph;

fn main() {
    let g = SqlGraph::new_in_memory();

    // The sample property graph of Figure 2a.
    let marko = g
        .add_vertex([("name", "marko".into()), ("age", 29i64.into())])
        .unwrap();
    let vadas = g
        .add_vertex([("name", "vadas".into()), ("age", 27i64.into())])
        .unwrap();
    let lop = g
        .add_vertex([("name", "lop".into()), ("lang", "java".into())])
        .unwrap();
    let josh = g
        .add_vertex([("name", "josh".into()), ("age", 32i64.into())])
        .unwrap();
    g.add_edge(marko, vadas, "knows", [("weight", 0.5f64.into())])
        .unwrap();
    g.add_edge(marko, josh, "knows", [("weight", 1.0f64.into())])
        .unwrap();
    g.add_edge(marko, lop, "created", [("weight", 0.4f64.into())])
        .unwrap();
    g.add_edge(josh, vadas, "likes", [("weight", 0.2f64.into())])
        .unwrap();
    g.add_edge(josh, lop, "created", [("weight", 0.8f64.into())])
        .unwrap();

    // The paper's running example (§4.1): count the distinct vertices
    // adjacent to any vertex whose 'name' is 'marko'.
    let q = "g.V.has('name','marko').both.dedup().count()";
    println!("gremlin : {q}");
    println!("compiles to:\n{}\n", g.translate_query(q).unwrap());
    println!("answer  : {}\n", g.query(q).unwrap().strings()[0]);

    // Traversals, projections, filters.
    for q in [
        "g.v(1).out('knows').values('name')",
        "g.V.has('age', T.gt, 28).values('name')",
        "g.v(1).out('knows').out('created').dedup().values('name')",
        "g.V.filter{it.lang == 'java'}.in('created').values('name')",
        "g.v(1).outE.label.dedup()",
    ] {
        let out = g.query(q).unwrap();
        println!("{q:<55} -> {:?}", out.strings());
    }

    // Updates run as multi-table transactions (the paper's stored
    // procedures); vertex deletion uses the negative-ID optimization.
    g.query("g.addEdge(g.v(4), g.v(1), 'knows', [weight:0.7])")
        .unwrap();
    g.query("g.removeVertex(g.v(2))").unwrap();
    println!(
        "\nafter update+delete, marko knows: {:?}",
        g.query("g.v(1).out('knows').values('name')")
            .unwrap()
            .strings()
    );
    let removed = g.vacuum().unwrap();
    println!("vacuum removed {removed} logically deleted rows");

    // Ad-hoc SQL against the same store.
    let rel = g
        .database()
        .execute("SELECT lbl, COUNT(*) AS n FROM ea GROUP BY lbl ORDER BY n DESC")
        .unwrap();
    println!("\nedge label histogram (via SQL):");
    for row in &rel.rows {
        println!("  {:<10} {}", row[0], row[1]);
    }
}
